//===- sim/Simulator.cpp --------------------------------------*- C++ -*-===//

#include "sim/Simulator.h"

#include "ir/Interp.h"
#include "support/StableStore.h"

#include <algorithm>
#include <cstdio>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>

using namespace dmcc;

namespace {

/// Checked parameter lookup: a missing binding is a usage error, not UB.
dmcc::IntT paramValue(const std::map<std::string, dmcc::IntT> &Params,
                      const std::string &Name) {
  auto It = Params.find(Name);
  if (It == Params.end()) {
    std::string Msg = "Simulator: missing value for parameter '" + Name +
                      "'";
    dmcc::fatalError(Msg.c_str());
  }
  return It->second;
}

/// Number of floating-point operations in a statement's right-hand side.
unsigned countFlops(const Statement &S) {
  unsigned N = 0;
  for (const RVal &R : S.RPool)
    if (R.K == RVal::Kind::Add || R.K == RVal::Kind::Sub ||
        R.K == RVal::Kind::Mul || R.K == RVal::Kind::Div ||
        R.K == RVal::Kind::Select)
      ++N;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Internal structures
//===----------------------------------------------------------------------===//

struct Simulator::Message {
  std::vector<double> Data; ///< functional payload
  uint64_t WordCount = 0;
  double ReadyTime = 0;
  /// Multicast content is consumed directly from the communication
  /// buffer (Section 5.5), so the receiver pays no per-word copy.
  bool FromMulticast = false;
  /// Reliable-transport sequence number on this channel (0 when the
  /// transport is bypassed).
  uint64_t Seq = 0;
  /// Flat Procs index of the sender and the scheduler round of the push.
  /// The threaded engine's visibility rule reads both to reproduce the
  /// sequential engine's intra-round ordering: a current-round push is
  /// visible to a receiver only when the sender's processor index does
  /// not exceed the receiver's (the sequential scheduler would have run
  /// the sender's slice first). Ignored by the sequential engine.
  unsigned SenderId = 0;
  uint64_t PushRound = 0;
};

struct Simulator::Frame {
  const std::vector<SpmdStmt> *List = nullptr;
  unsigned Pos = 0;
  const SpmdStmt *LoopStmt = nullptr; ///< non-null for loop body frames
  IntT LoopCur = 0, LoopHi = 0;
};

struct Simulator::VirtProc {
  std::vector<IntT> Coord;
  unsigned Id = 0;   ///< flat index in Procs: crash-schedule identity
  unsigned Phys = 0;
  std::vector<IntT> Env;
  std::vector<IntT> ProgEnv;
  std::vector<Frame> Stack;
  bool Finished = false;
  bool Blocked = false;
  /// Killed by the crash-stop schedule and not yet rolled back: executes
  /// nothing, and its volatile state below is considered lost.
  bool Crashed = false;
  /// Logical time: statements this incarnation has executed. Restored on
  /// rollback, so replay passes through the same (proc, step) points.
  uint64_t Steps = 0;
  /// What this processor was waiting for the last time it blocked; the
  /// deadlock detector reads it to build the structured diagnostic.
  PendingRecv LastBlock;
  std::map<std::pair<unsigned, IntT>, double> Store;
  int LastMulticastComm = -1;
  /// Physical destinations already served within the current multicast
  /// burst (one wire message per physical processor, Section 6.1.3).
  std::set<unsigned> BurstPhys;
  double BurstReady = 0;
  /// Cached packed content of the current multicast burst (the content is
  /// receiver-independent, so it is packed once per burst).
  int CachedPackComm = -1;
  std::vector<double> CachedData;
  uint64_t CachedCount = 0;
};

/// One coordinated checkpoint in the stable store: everything a rollback
/// must restore. Taken at statement boundaries between scheduler rounds,
/// so it is a consistent cut by construction; the receive queues stand in
/// for the channel state a distributed protocol would record with
/// markers. Clocks and the monotonic overhead counters are deliberately
/// absent — wall-model time and wasted wire traffic never rewind.
struct Simulator::Checkpoint {
  struct ProcState {
    std::vector<IntT> Env, ProgEnv;
    std::vector<Frame> Stack;
    bool Finished = false;
    uint64_t Steps = 0;
    std::map<std::pair<unsigned, IntT>, double> Store;
    int LastMulticastComm = -1;
    std::set<unsigned> BurstPhys;
    double BurstReady = 0;
    int CachedPackComm = -1;
    std::vector<double> CachedData;
    uint64_t CachedCount = 0;
  };
  std::vector<ProcState> Procs;
  std::map<std::vector<IntT>, std::vector<Message>> Queues;
  std::map<std::vector<IntT>, uint64_t> SendSeq, RecvSeq;
  std::vector<TransportFailure> Failures;
  /// Logical counters at the checkpoint line; a rollback rewinds the
  /// result's counters to these so recovered runs report the same
  /// logical traffic as fault-free ones.
  uint64_t Messages = 0, IntraMessages = 0, Words = 0, Flops = 0,
           ComputeIterations = 0;
  /// Useful-work bucket values at the line; the delta at rollback is the
  /// undone work that moves into the recovery bucket.
  std::vector<double> BusyCompute, BusyProtocol, BusyCheckpoint;
  uint64_t EventsAtTaken = 0;
  /// Snapshot size per physical processor in 8-byte words, charged again
  /// as the stable-store read on restore.
  std::vector<uint64_t> WordsPerPhys;
};

/// Everything one slice of one virtual processor needs beyond the
/// processor itself: where counters, transport failures and crash
/// events go, the exact global-event base for the checkpoint gate and
/// the runaway budget, and — in threaded runs — the engine hooks for
/// the wavefront visibility rule.
struct Simulator::StepCtx {
  SimCounters &C;
  std::vector<TransportFailure> &Failures;
  std::vector<CrashEvent> &Crashes;
  /// Global Events immediately before this slice. Exact in the
  /// sequential engine and in serialized (checkpoint-imminent) threaded
  /// rounds; the round-start value otherwise.
  uint64_t EventsBase = 0;
  /// Statements executed by this slice (out-parameter; blocked receive
  /// attempts are not counted, matching the sequential engine).
  uint64_t Executed = 0;
  /// Whether the checkpoint gate may fire inside this slice. Parallel
  /// threaded rounds disable it — they are classified so the gate
  /// provably cannot trigger in the sequential engine either.
  bool GateCheckpoints = true;
  uint64_t Round = 0;          ///< scheduler round (message tagging)
  ThreadEngine *TE = nullptr;  ///< non-null in threaded runs
  EventEngine *EE = nullptr;   ///< non-null under the event scheduler
};

/// The threaded engine: a persistent pool of worker threads, one round
/// barrier, and per-processor completion tracking for the wavefront
/// rule. Physical processor p is owned by worker p % Workers for the
/// whole run, so per-physical clocks and busy buckets are single-writer
/// by construction; each worker steps its processors in ascending flat
/// index, which the visibility and wait rules below extend to the exact
/// sequential order where it is observable. See DESIGN.md §10 for the
/// determinism argument.
struct Simulator::ThreadEngine {
  Simulator &S;
  const unsigned Workers;

  /// Guards the round-control fields and DoneRound; the condition
  /// variables hang off it.
  std::mutex Mu;
  std::condition_variable StartCv; ///< workers await a round start
  std::condition_variable DoneCv;  ///< main awaits worker completion
  std::condition_variable ProcCv;  ///< per-processor wavefront waits
  uint64_t Round = 0;
  bool Serial = false; ///< this round runs one processor at a time
  bool Stop = false;
  unsigned DoneWorkers = 0;
  uint64_t EventsAtRoundStart = 0;
  /// Serialized rounds only: Events plus the executed counts of every
  /// processor that already finished this round — exactly the live
  /// counter the sequential engine's checkpoint gate reads.
  uint64_t PrefixEvents = 0;
  std::vector<uint64_t> DoneRound; ///< per proc: last completed round

  /// Per-processor round-local outputs, merged by the main thread in
  /// ascending processor order so Failures/CrashLog keep the sequential
  /// append order exactly.
  std::vector<uint64_t> ProcExecuted;
  std::vector<std::vector<TransportFailure>> ProcFailures;
  std::vector<std::vector<CrashEvent>> ProcCrashes;

  struct WorkerOut {
    SimCounters C;
    bool Progress = false, AllDone = true, AnyDead = false;
  };
  std::vector<WorkerOut> Outs;

  /// Guards Queues, SendSeq and RecvSeq — the only state two workers
  /// can touch concurrently. Message operations are rare next to
  /// compute statements, so one lock suffices.
  std::mutex ChanMu;

  std::vector<std::thread> Threads;

  ThreadEngine(Simulator &S, unsigned Workers) : S(S), Workers(Workers) {
    DoneRound.assign(S.Procs.size(), 0);
    ProcExecuted.assign(S.Procs.size(), 0);
    ProcFailures.resize(S.Procs.size());
    ProcCrashes.resize(S.Procs.size());
    Outs.resize(Workers);
    Threads.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Threads.emplace_back([this, W] { workerLoop(W); });
  }

  ~ThreadEngine() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Stop = true;
    }
    StartCv.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  bool procDone(unsigned J, uint64_t R) {
    std::lock_guard<std::mutex> L(Mu);
    return DoneRound[J] >= R;
  }

  void waitProcDone(unsigned J, uint64_t R) {
    std::unique_lock<std::mutex> L(Mu);
    ProcCv.wait(L, [&] { return DoneRound[J] >= R; });
  }

  void markDone(unsigned J, uint64_t Executed, bool SerialRound) {
    std::lock_guard<std::mutex> L(Mu);
    ProcExecuted[J] = Executed;
    if (SerialRound)
      PrefixEvents += Executed;
    DoneRound[J] = Round;
    ProcCv.notify_all();
  }

  void workerLoop(unsigned W) {
    uint64_t Seen = 0;
    for (;;) {
      bool SerialRound;
      {
        std::unique_lock<std::mutex> L(Mu);
        StartCv.wait(L, [&] { return Stop || Round > Seen; });
        if (Stop)
          return;
        Seen = Round;
        SerialRound = Serial;
      }
      WorkerOut &Out = Outs[W];
      for (unsigned J = 0, E = S.Procs.size(); J != E; ++J) {
        if (S.Procs[J].Phys % Workers != W)
          continue;
        runProc(J, Seen, SerialRound, Out);
      }
      {
        std::lock_guard<std::mutex> L(Mu);
        if (++DoneWorkers == Workers)
          DoneCv.notify_all();
      }
    }
  }

  void runProc(unsigned J, uint64_t R, bool SerialRound, WorkerOut &Out) {
    // Serialized (checkpoint-imminent) rounds reproduce the sequential
    // processor order in full: nobody starts until every lower-index
    // processor has completed this round, so the events gate sees the
    // exact live counter. The predecessor chain suffices — J-1 was
    // itself only marked done after J-2, inductively.
    if (SerialRound && J > 0)
      waitProcDone(J - 1, R);
    VirtProc &V = S.Procs[J];
    if (V.Crashed) {
      Out.AllDone = false;
      Out.AnyDead = true;
      markDone(J, 0, SerialRound);
      return;
    }
    if (V.Finished) {
      markDone(J, 0, SerialRound);
      return;
    }
    V.Blocked = false;
    StepCtx Ctx{Out.C, ProcFailures[J], ProcCrashes[J]};
    Ctx.TE = this;
    Ctx.Round = R;
    if (SerialRound) {
      {
        std::lock_guard<std::mutex> L(Mu);
        Ctx.EventsBase = PrefixEvents;
      }
      Ctx.GateCheckpoints = true;
    } else {
      // Parallel rounds are classified so the gate cannot trigger (in
      // either engine); the stale base only delays the runaway-budget
      // abort, which runRound re-checks at the barrier.
      Ctx.EventsBase = EventsAtRoundStart;
      Ctx.GateCheckpoints = false;
    }
    if (S.stepProc(V, Ctx))
      Out.Progress = true;
    if (V.Crashed)
      Out.AnyDead = true;
    if (!V.Finished)
      Out.AllDone = false;
    markDone(J, Ctx.Executed, SerialRound);
  }

  /// Runs one barrier-synchronized round across the pool and merges all
  /// per-worker and per-processor outputs back into the simulator, in
  /// the sequential engine's order.
  RoundFlags runRound() {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Round;
      EventsAtRoundStart = S.Events;
      PrefixEvents = S.Events;
      // Checkpoint-imminent classification: if the gate could fire
      // inside this round even when every processor runs a full slice,
      // serialize the round. Otherwise Events stays strictly below the
      // trigger for the whole round in the sequential engine too, so
      // running the gate-free parallel path is exact.
      Serial = S.NextCheckpointEvents != 0 &&
               addSat(S.Events, mulSat(S.Procs.size(), S.sliceBudget())) >=
                   S.NextCheckpointEvents;
      DoneWorkers = 0;
    }
    StartCv.notify_all();
    {
      std::unique_lock<std::mutex> L(Mu);
      DoneCv.wait(L, [&] { return DoneWorkers == Workers; });
    }
    RoundFlags F;
    for (WorkerOut &O : Outs) {
      F.Progress = F.Progress || O.Progress;
      F.AllDone = F.AllDone && O.AllDone;
      F.AnyDead = F.AnyDead || O.AnyDead;
      S.Ctr.add(O.C);
      O = WorkerOut();
    }
    for (unsigned J = 0, E = S.Procs.size(); J != E; ++J) {
      S.Events += ProcExecuted[J];
      ProcExecuted[J] = 0;
      for (TransportFailure &TF : ProcFailures[J])
        S.Failures.push_back(std::move(TF));
      ProcFailures[J].clear();
      for (CrashEvent &CE : ProcCrashes[J])
        S.CrashLog.push_back(std::move(CE));
      ProcCrashes[J].clear();
    }
    if (S.Events > S.Opts.MaxEvents)
      fatalError("simulation event budget exhausted");
    return F;
  }
};

/// The discrete-event scheduler (DESIGN.md §14). The sequential engine
/// sweeps every virtual processor every round; at P >= 1024 most of
/// those slices are blocked receive attempts — pure no-ops that rewind
/// their own step counters and touch nothing else. This engine executes
/// the exact same statement sequence while skipping the provable
/// no-ops: a blocked receiver parks in a per-channel hash bucket
/// (WaitTable) and only the send that pushes onto its channel can make
/// its next attempt differ, so the push wakes it in O(1) and nothing
/// else ever reschedules it. Ascending-index pops plus the wake rule
/// below reproduce the sequential intra-round visibility exactly, which
/// is what makes the results — clocks, counters, arrays, diagnostics —
/// bit-identical (the determinism argument is spelled out in §14).
struct Simulator::EventEngine {
  Simulator &S;

  /// SplitMix64-style hash over a channel key, for the wait buckets.
  /// The durable Queues map stays an ordered std::map (serialization
  /// order is part of the on-disk format); this hash is auxiliary.
  struct KeyHash {
    size_t operator()(const std::vector<IntT> &K) const {
      uint64_t H = 0x9e3779b97f4a7c15ull;
      for (IntT X : K) {
        uint64_t V = static_cast<uint64_t>(X) + 0x9e3779b97f4a7c15ull;
        V = (V ^ (V >> 30)) * 0xbf58476d1ce4e5b9ull;
        V = (V ^ (V >> 27)) * 0x94d049bb133111ebull;
        H ^= (V ^ (V >> 31)) + (H << 6) + (H >> 2);
      }
      return static_cast<size_t>(H);
    }
  };

  /// Processors runnable this round / next round. Ordered sets: the
  /// round drains RunQ in ascending flat index, which IS the sequential
  /// sweep order restricted to non-skippable slices.
  std::set<unsigned> RunQ, NextQ;
  /// Channel key -> the one processor blocked receiving on it (a key
  /// names its receiver coordinate, so at most one waiter per key).
  std::unordered_map<std::vector<IntT>, unsigned, KeyHash> WaitTable;
  /// Inverse of WaitTable for cleanup; empty when the proc is not
  /// parked. Every live unfinished processor is in exactly one of
  /// RunQ, NextQ or WaitTable.
  std::vector<std::vector<IntT>> WaitKeyOf;
  unsigned Running = 0; ///< proc whose slice is executing
  bool InRound = false;
  uint64_t FinishedCount = 0, DeadCount = 0;

  explicit EventEngine(Simulator &S) : S(S) { reset(); }

  /// Rebuild the scheduler state from the processor flags — at
  /// construction (possibly after a durable resume) and after a
  /// rollback, which reincarnates dead processors and unblocks all.
  void reset() {
    RunQ.clear();
    NextQ.clear();
    WaitTable.clear();
    WaitKeyOf.assign(S.Procs.size(), {});
    FinishedCount = DeadCount = 0;
    InRound = false;
    for (const VirtProc &V : S.Procs) {
      if (V.Finished)
        ++FinishedCount;
      else
        RunQ.insert(V.Id);
    }
  }

  /// A message landed on \p Key: if its receiver is parked, its next
  /// attempt is no longer a provable no-op — reschedule it. A waiter
  /// with an index above the running processor re-enters the CURRENT
  /// round (ascending pops have not reached it, exactly as the
  /// sequential sweep had not); at or below, it sees the message next
  /// round, matching the sequential engine's intra-round visibility.
  void notifyPush(const std::vector<IntT> &Key) {
    auto It = WaitTable.find(Key);
    if (It == WaitTable.end())
      return;
    unsigned W = It->second;
    WaitTable.erase(It);
    WaitKeyOf[W].clear();
    if (InRound && W > Running)
      RunQ.insert(W);
    else
      NextQ.insert(W);
  }

  /// Visits \p Id's processor with the checkpoint gate already crossed,
  /// exactly as the sequential sweep does: the slice performs only
  /// frame maintenance (popping exhausted frames, advancing loop
  /// cursors) before gate-returning with zero executed statements. It
  /// cannot block or crash (the gate check precedes both), but it CAN
  /// finish — and it trims the stack, which checkpoint snapshots
  /// serialize, so skipping the visit would change CheckpointBytes and
  /// the per-phys checkpoint cost.
  void gateVisit(unsigned Id) {
    VirtProc &V = S.Procs[Id];
    V.Blocked = false;
    StepCtx Ctx{S.Ctr, S.Failures, S.CrashLog};
    Ctx.EventsBase = S.Events;
    Ctx.EE = this;
    S.stepProc(V, Ctx);
    S.Events += Ctx.Executed; // always zero past the gate
    if (V.Finished)
      ++FinishedCount;
  }

  /// One scheduler round: the sequential round with the skippable
  /// slices skipped. Flags are computed from the standing counts so
  /// the boundary logic in run() is shared verbatim across engines.
  RoundFlags runRound() {
    RoundFlags F;
    // A round starting with the checkpoint gate already tripped (a dead
    // processor made run() skip the boundary checkpoint): every slice
    // of the sequential sweep gate-returns after frame maintenance.
    // Replicate the visits for the runnable processors; parked ones
    // have no pending maintenance (their cursor rests on the receive
    // statement) and must keep Blocked — reportStall reads the flag if
    // the rollback budget later runs out, and a parked processor is
    // never revisited to set it back.
    if (S.NextCheckpointEvents != 0 && S.Events >= S.NextCheckpointEvents) {
      std::vector<unsigned> Runnable(RunQ.begin(), RunQ.end());
      for (unsigned Id : Runnable) {
        gateVisit(Id);
        if (S.Procs[Id].Finished)
          RunQ.erase(Id);
      }
      F.Progress = false;
      F.AllDone = FinishedCount == S.Procs.size();
      F.AnyDead = DeadCount > 0;
      return F;
    }
    InRound = true;
    bool GateCut = false;
    while (!RunQ.empty()) {
      Running = *RunQ.begin();
      RunQ.erase(RunQ.begin());
      VirtProc &V = S.Procs[Running];
      V.Blocked = false;
      StepCtx Ctx{S.Ctr, S.Failures, S.CrashLog};
      Ctx.EventsBase = S.Events;
      Ctx.EE = this;
      if (S.stepProc(V, Ctx))
        F.Progress = true;
      S.Events += Ctx.Executed;
      if (V.Crashed) {
        ++DeadCount; // parked nowhere until the rollback reset
      } else if (V.Finished) {
        ++FinishedCount;
      } else if (V.Blocked) {
        // Park on the channel the receive is stuck on; the key layout
        // matches the one the Recv path builds (comm id, sender coord,
        // own coord).
        std::vector<IntT> Key;
        Key.reserve(1 + V.LastBlock.Peer.size() + V.Coord.size());
        Key.push_back(static_cast<IntT>(V.LastBlock.CommId));
        Key.insert(Key.end(), V.LastBlock.Peer.begin(),
                   V.LastBlock.Peer.end());
        Key.insert(Key.end(), V.Coord.begin(), V.Coord.end());
        WaitKeyOf[Running] = Key;
        WaitTable.emplace(std::move(Key), Running);
      } else {
        NextQ.insert(Running); // slice budget spent, still runnable
      }
      // Checkpoint gate: once the trigger is reached, every remaining
      // slice of the sequential round gate-returns without executing a
      // statement — but still does frame maintenance. Stop the drain
      // and fall through to the gate sweep below.
      if (S.NextCheckpointEvents != 0 &&
          S.Events >= S.NextCheckpointEvents) {
        GateCut = true;
        break;
      }
    }
    InRound = false;
    if (GateCut) {
      // The sequential sweep still visits the processors above the cut
      // point (RunQ drains in ascending index, so the remnant is
      // exactly those). Each visit trims the stack and may finish the
      // processor; survivors run for real next round. Parked
      // processors' gated visits are no-ops beyond the Blocked flag,
      // which must stay set (see the gated-start branch above).
      std::vector<unsigned> Remnant(RunQ.begin(), RunQ.end());
      RunQ.clear();
      for (unsigned Id : Remnant) {
        gateVisit(Id);
        if (!S.Procs[Id].Finished)
          NextQ.insert(Id);
      }
    }
    std::swap(RunQ, NextQ); // NextQ is empty after the drain
    F.AllDone = FinishedCount == S.Procs.size();
    F.AnyDead = DeadCount > 0;
    return F;
  }
};

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

Simulator::~Simulator() = default;

Simulator::Simulator(const Program &P, const CompiledProgram &CP,
                     const CompileSpec &Spec, SimOptions Opts)
    : P(P), CP(CP), Spec(Spec), Opts(std::move(Opts)),
      Faults(this->Opts.Faults) {
  assert(this->Opts.PhysGrid.size() == CP.Spmd.GridDims &&
         "physical grid arity mismatch");
  for (IntT G : this->Opts.PhysGrid)
    if (G < 1)
      fatalError("Simulator: physical grid dimensions must be >= 1");
  computeVirtualGrid();

  // Row-major strides of the virtual grid: the flat Procs index of a
  // coordinate, matching the construction odometer below. Checked — a
  // pathological grid overflows here instead of wrapping.
  {
    unsigned Dims = CP.Spmd.GridDims;
    VirtStride.assign(Dims, 1);
    for (unsigned D = Dims; D-- > 1;)
      VirtStride[D - 1] =
          mulChk(VirtStride[D], addChk(subChk(VirtHi[D], VirtLo[D]), 1));
  }

  // Parameter values aligned to the SPMD space.
  ParamEnv.assign(CP.Spmd.Sp.size(), 0);
  for (unsigned I = 0, E = CP.Spmd.Sp.size(); I != E; ++I) {
    if (CP.Spmd.Sp.kind(I) != VarKind::Param)
      continue;
    auto It = this->Opts.ParamValues.find(CP.Spmd.Sp.name(I));
    if (It == this->Opts.ParamValues.end())
      fatalError("Simulator: missing parameter value");
    ParamEnv[I] = It->second;
  }

  // Instantiate the virtual processors.
  unsigned Dims = CP.Spmd.GridDims;
  std::vector<IntT> Coord = VirtLo;
  bool Done = false;
  while (!Done) {
    VirtProc V;
    V.Coord = Coord;
    V.Id = static_cast<unsigned>(Procs.size());
    V.Phys = physOf(Coord);
    V.Env = ParamEnv;
    for (unsigned D = 0; D != Dims; ++D)
      V.Env[CP.Spmd.MyProcVars[D]] = Coord[D];
    V.ProgEnv.assign(P.space().size(), 0);
    for (unsigned I = 0, E = P.space().size(); I != E; ++I)
      if (P.space().kind(I) == VarKind::Param)
        V.ProgEnv[I] = paramValue(this->Opts.ParamValues, P.space().name(I));
    Frame F;
    F.List = &CP.Spmd.Top;
    V.Stack.push_back(F);
    Procs.push_back(std::move(V));
    // Advance the coordinate odometer.
    for (unsigned D = Dims; D-- > 0;) {
      if (++Coord[D] <= VirtHi[D])
        break;
      Coord[D] = VirtLo[D];
      if (D == 0)
        Done = true;
    }
  }

  IntT PhysCount = 1;
  for (IntT G : this->Opts.PhysGrid)
    PhysCount = mulChk(PhysCount, G);
  if (PhysCount > static_cast<IntT>(std::numeric_limits<unsigned>::max()))
    fatalError("Simulator: physical processor count overflows unsigned");
  PhysClock.assign(PhysCount, 0.0);
  PhysBusy.assign(PhysCount, 0.0);
  BusyCompute.assign(PhysCount, 0.0);
  BusyProtocol.assign(PhysCount, 0.0);
  BusyCheckpoint.assign(PhysCount, 0.0);
  NetFree.assign(PhysCount, 0.0);
  NetDeferred.assign(PhysCount, 0.0);
  NetExposed.assign(PhysCount, 0.0);
  HasCrashed.assign(Procs.size(), 0);
  SlowFactor.assign(PhysCount, 1.0);
  if (this->Opts.Faults.MaxSlowdown > 1.0)
    for (unsigned Ph = 0; Ph != static_cast<unsigned>(PhysCount); ++Ph)
      SlowFactor[Ph] = Faults.slowdown(Ph);

  if (this->Opts.Functional)
    initLocalStores();
}

unsigned Simulator::physOf(const std::vector<IntT> &VirtCoord) const {
  // pi(v) = v mod P per dimension, row-major flattened. The fold and
  // the flattening run in checked IntT; the constructor verified the
  // physical processor count fits an unsigned, and the result is always
  // below that count, so the final narrowing is value-preserving.
  IntT Phys = 0;
  for (unsigned D = 0, E = VirtCoord.size(); D != E; ++D) {
    IntT F = floorMod(VirtCoord[D], Opts.PhysGrid[D]);
    Phys = addChk(mulChk(Phys, Opts.PhysGrid[D]), F);
  }
  return static_cast<unsigned>(Phys);
}

bool Simulator::procIndexOf(const std::vector<IntT> &Coord,
                            unsigned &Out) const {
  if (Coord.size() != VirtLo.size())
    return false;
  IntT Flat = 0;
  for (unsigned D = 0, E = Coord.size(); D != E; ++D) {
    if (Coord[D] < VirtLo[D] || Coord[D] > VirtHi[D])
      return false;
    Flat = addChk(Flat,
                  mulChk(VirtStride[D], subChk(Coord[D], VirtLo[D])));
  }
  Out = static_cast<unsigned>(Flat);
  return true;
}

unsigned Simulator::sliceBudget() const {
  // Short slices when crashes or checkpoints are in play: both trigger
  // at round boundaries, so the boundary spacing bounds how stale a
  // crash detection or a checkpoint line can be.
  return (Opts.Faults.CrashRate > 0 || Opts.Checkpoint.enabled())
             ? 512
             : 200000;
}

unsigned Simulator::effectiveWorkers() const {
  unsigned W = Opts.Threads;
  if (W == 0) {
    W = std::thread::hardware_concurrency();
    if (W == 0)
      W = 1;
  }
  // More workers than physical processors would idle: processor p is
  // owned by worker p % W, so surplus workers own nothing.
  unsigned PhysCount = static_cast<unsigned>(PhysClock.size());
  if (PhysCount != 0 && W > PhysCount)
    W = PhysCount;
  return W == 0 ? 1 : W;
}

void Simulator::flushCounters(SimResult &R) const {
  R.Messages = Ctr.Messages;
  R.IntraMessages = Ctr.IntraMessages;
  R.Words = Ctr.Words;
  R.Flops = Ctr.Flops;
  R.ComputeIterations = Ctr.ComputeIterations;
  R.Retransmissions = Ctr.Retransmissions;
  R.DroppedPackets = Ctr.DroppedPackets;
  R.DuplicatesSuppressed = Ctr.DuplicatesSuppressed;
  R.AcksSent = Ctr.AcksSent;
  R.CorruptedPackets = Ctr.CorruptedPackets;
  R.NacksSent = Ctr.NacksSent;
  R.PartitionDrops = Ctr.PartitionDrops;
  R.SlowLinkMessages = Ctr.SlowLinkMessages;
  R.Recovery.Crashes = Ctr.Crashes;
  fillOverlap(R);
}

void Simulator::fillOverlap(SimResult &R) const {
  R.Overlap.EarlySends = Ctr.EarlySends;
  R.Overlap.DeferredSeconds = 0;
  R.Overlap.ExposedSeconds = 0;
  for (unsigned Ph = 0, E = PhysClock.size(); Ph != E; ++Ph) {
    R.Overlap.DeferredSeconds += NetDeferred[Ph];
    R.Overlap.ExposedSeconds += NetExposed[Ph];
  }
}

void Simulator::computeVirtualGrid() {
  unsigned Dims = CP.Spmd.GridDims;
  VirtLo.assign(Dims, 0);
  VirtHi.assign(Dims, -1);
  bool Any = false;

  auto Widen = [&](const Decomposition &D, System Dom) {
    // Pin parameters, attach grid variables, take per-dim bounds.
    for (unsigned I = 0; I != Dom.space().size(); ++I) {
      if (Dom.space().kind(I) != VarKind::Param)
        continue;
      Dom.addEQ(Dom.varExpr(I).plusConst(
          -paramValue(Opts.ParamValues, Dom.space().name(I))));
    }
    std::vector<unsigned> PVs;
    for (unsigned Dd = 0; Dd != Dims; ++Dd)
      PVs.push_back(Dom.addVar(Dom.space().freshName("@grid"),
                               VarKind::Proc));
    D.addConstraintsByName(Dom, PVs);
    for (unsigned Dd = 0; Dd != Dims; ++Dd) {
      if (D.dim(Dd).Replicated)
        continue;
      System Proj = Dom;
      // Parameters are pinned by equalities above, so eliminating them is
      // an exact substitution; the resulting bounds are constants.
      for (unsigned I = 0; I != Proj.space().size(); ++I)
        if (I != PVs[Dd] && Proj.involves(I))
          Proj = Proj.fmEliminated(I);
      std::vector<VarBound> Lo, Hi;
      Proj.normalize();
      Proj.boundsOf(PVs[Dd], Lo, Hi);
      if (Lo.empty() || Hi.empty())
        fatalError("Simulator: unbounded virtual processor grid");
      IntT L = 0, H = 0;
      bool First = true;
      std::vector<IntT> Zero(Proj.space().size(), 0);
      for (const VarBound &B : Lo) {
        IntT V = ceilDiv(B.Num.evaluate(Zero), B.Den);
        L = First ? V : std::max(L, V);
        First = false;
      }
      First = true;
      for (const VarBound &B : Hi) {
        IntT V = floorDiv(B.Num.evaluate(Zero), B.Den);
        H = First ? V : std::min(H, V);
        First = false;
      }
      if (H < L)
        return; // empty source: contributes nothing
      if (!Any || L < VirtLo[Dd])
        VirtLo[Dd] = L;
      if (!Any || H > VirtHi[Dd])
        VirtHi[Dd] = H;
    }
    Any = true;
  };

  for (const StmtPlan &SP : Spec.Stmts)
    Widen(SP.Comp, P.domainOf(SP.StmtId));

  auto ArrayDomain = [&](unsigned ArrayId) {
    Space Sp = arraySourceSpace(P, ArrayId);
    System Dom(Sp);
    unsigned K = 0;
    for (unsigned I = 0; I != Sp.size(); ++I) {
      if (Sp.kind(I) != VarKind::Data)
        continue;
      Dom.addGE(Dom.varExpr(I));
      Dom.addGE(mapExpr(P.array(ArrayId).DimSizes[K], P.space(), Sp)
                    .plusConst(-1) -
                Dom.varExpr(I));
      ++K;
    }
    return Dom;
  };
  for (const auto &[ArrayId, D] : Spec.InitialData)
    Widen(D, ArrayDomain(ArrayId));
  for (const auto &[ArrayId, D] : Spec.FinalData)
    Widen(D, ArrayDomain(ArrayId));

  for (unsigned Dd = 0; Dd != Dims; ++Dd)
    if (VirtHi[Dd] < VirtLo[Dd])
      fatalError("Simulator: empty virtual processor grid");
}

IntT Simulator::flatIndex(unsigned ArrayId,
                          const std::vector<IntT> &Idx) const {
  const ArrayDecl &D = P.array(ArrayId);
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0, E = P.space().size(); I != E; ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = paramValue(Opts.ParamValues, P.space().name(I));
  IntT Flat = 0;
  for (unsigned K = 0, E = Idx.size(); K != E; ++K)
    Flat = addChk(mulChk(Flat, D.DimSizes[K].evaluate(Env)), Idx[K]);
  return Flat;
}

void Simulator::initLocalStores() {
  for (const auto &[ArrayId, D] : Spec.InitialData) {
    const ArrayDecl &AD = P.array(ArrayId);
    std::vector<IntT> Sizes;
    for (const AffineExpr &S : AD.DimSizes) {
      std::vector<IntT> Env(P.space().size(), 0);
      for (unsigned I = 0; I != P.space().size(); ++I)
        if (P.space().kind(I) == VarKind::Param)
          Env[I] = paramValue(Opts.ParamValues, P.space().name(I));
      Sizes.push_back(S.evaluate(Env));
    }
    // Source values for ownership tests: element indices then params in
    // the decomposition's source-space order.
    std::vector<IntT> Src(D.sourceSpace().size(), 0);
    std::vector<int> DataPos, ParamPos;
    for (unsigned I = 0; I != D.sourceSpace().size(); ++I) {
      if (D.sourceSpace().kind(I) == VarKind::Param)
        Src[I] = paramValue(Opts.ParamValues, D.sourceSpace().name(I));
      else
        DataPos.push_back(static_cast<int>(I));
    }
    std::vector<IntT> Idx(Sizes.size(), 0);
    bool Done = Sizes.empty();
    for (IntT S : Sizes)
      if (S <= 0)
        Done = true;
    while (!Done) {
      for (unsigned K = 0; K != Idx.size(); ++K)
        Src[DataPos[K]] = Idx[K];
      IntT Flat = flatIndex(ArrayId, Idx);
      for (VirtProc &V : Procs)
        if (D.owns(Src, V.Coord))
          V.Store[{ArrayId, Flat}] = initialArrayValue(ArrayId, Flat);
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

IntT evalBoundList(const std::vector<SpmdBound> &Bs,
                   const std::vector<IntT> &Env, bool IsLower) {
  IntT R = 0;
  bool First = true;
  for (const SpmdBound &B : Bs) {
    IntT V = IsLower ? ceilDiv(B.Num.evaluate(Env), B.Den)
                     : floorDiv(B.Num.evaluate(Env), B.Den);
    if (First)
      R = V;
    else
      R = IsLower ? std::max(R, V) : std::min(R, V);
    First = false;
  }
  return R;
}

bool condsHold(const std::vector<Constraint> &Cs,
               const std::vector<IntT> &Env) {
  for (const Constraint &C : Cs) {
    IntT V = C.Expr.evaluate(Env);
    if (C.isEquality() ? V != 0 : V < 0)
      return false;
  }
  return true;
}

/// True if the loop body is free of communication and control that could
/// block, making it collapsible in performance mode.
bool isCollapsible(const SpmdStmt &For) {
  for (const SpmdStmt &S : For.Body)
    if (S.K != SpmdStmt::Kind::Compute && S.K != SpmdStmt::Kind::SetVar)
      return false;
  return !For.Body.empty();
}

} // namespace

double Simulator::statementCost(const Statement &S) const {
  return Opts.Cost.IterOverhead + countFlops(S) * Opts.Cost.FlopTime;
}

void Simulator::execComputeIter(VirtProc &V, const SpmdStmt &St) {
  const Statement &S = P.statement(St.StmtId);
  if (!Opts.Functional)
    return;
  for (unsigned K = 0, E = S.Loops.size(); K != E; ++K)
    V.ProgEnv[P.loop(S.Loops[K]).VarIndex] =
        St.IterExprs[K].evaluate(V.Env);

  // Evaluate the right-hand side against the local store.
  std::function<double(int)> Eval = [&](int Node) -> double {
    const RVal &R = S.RPool[Node];
    switch (R.K) {
    case RVal::Kind::ReadRef: {
      const Access &A = S.Reads[R.ReadIdx];
      std::vector<IntT> Idx;
      for (const AffineExpr &E : A.Indices)
        Idx.push_back(E.evaluate(V.ProgEnv));
      IntT Flat = flatIndex(A.ArrayId, Idx);
      auto It = V.Store.find({A.ArrayId, Flat});
      if (It == V.Store.end()) {
        std::string Msg = "locality violation: processor reads " +
                          P.array(A.ArrayId).Name + " element it never " +
                          "owned, wrote, or received";
        fatalError(Msg.c_str());
      }
      return It->second;
    }
    case RVal::Kind::ConstF:
      return R.Const;
    case RVal::Kind::AffineVal:
      return static_cast<double>(R.Aff.evaluate(V.ProgEnv));
    case RVal::Kind::Add:
      return Eval(R.Lhs) + Eval(R.Rhs);
    case RVal::Kind::Sub:
      return Eval(R.Lhs) - Eval(R.Rhs);
    case RVal::Kind::Mul:
      return Eval(R.Lhs) * Eval(R.Rhs);
    case RVal::Kind::Div:
      return Eval(R.Lhs) / Eval(R.Rhs);
    case RVal::Kind::Select:
      return Eval(R.Cond) >= 0 ? Eval(R.Lhs) : Eval(R.Rhs);
    }
    return 0;
  };
  double Val = Eval(S.RRoot);
  std::vector<IntT> WIdx;
  for (const AffineExpr &E : S.Write.Indices)
    WIdx.push_back(E.evaluate(V.ProgEnv));
  V.Store[{S.Write.ArrayId, flatIndex(S.Write.ArrayId, WIdx)}] = Val;
}

bool Simulator::stepProc(VirtProc &V, StepCtx &Ctx) {
  bool Ran = false;
  const bool CrashActive = Opts.Faults.CrashRate > 0;
  unsigned Slice = sliceBudget();
  ThreadEngine *TE = Ctx.TE;
  // Channel-state lock (Queues/SendSeq/RecvSeq): a real lock only under
  // the threaded engine; the sequential engine constructs an unlocked
  // guard and pays nothing.
  auto ChanGuard = [TE]() {
    return TE ? std::unique_lock<std::mutex>(TE->ChanMu)
              : std::unique_lock<std::mutex>();
  };
  double &Clock = PhysClock[V.Phys];
  double &Busy = PhysBusy[V.Phys];
  // Injected per-processor slowdown; exactly 1.0 (cost-neutral) unless
  // fault injection is configured.
  const double SF = SlowFactor[V.Phys];

  // Inline executor for pack/unpack bodies (never blocks).
  std::function<void(const std::vector<SpmdStmt> &,
                     std::vector<double> *, const std::vector<double> *,
                     uint64_t &, uint64_t &)>
      RunItems = [&](const std::vector<SpmdStmt> &List,
                     std::vector<double> *PackOut,
                     const std::vector<double> *UnpackIn, uint64_t &Cursor,
                     uint64_t &Count) {
        for (const SpmdStmt &S : List) {
          switch (S.K) {
          case SpmdStmt::Kind::Seq:
            RunItems(S.Body, PackOut, UnpackIn, Cursor, Count);
            break;
          case SpmdStmt::Kind::SetVar:
            V.Env[S.Var] = S.ValueDen == 1
                               ? S.Value.evaluate(V.Env)
                               : floorDiv(S.Value.evaluate(V.Env),
                                          S.ValueDen);
            break;
          case SpmdStmt::Kind::If:
            if (condsHold(S.Conds, V.Env))
              RunItems(S.Body, PackOut, UnpackIn, Cursor, Count);
            break;
          case SpmdStmt::Kind::For: {
            IntT Lo = evalBoundList(S.Lower, V.Env, true);
            IntT Hi = evalBoundList(S.Upper, V.Env, false);
            if (!Opts.Functional && Opts.CollapseLoops && Hi >= Lo) {
              // Collapsible when each iteration contributes exactly one
              // item unconditionally.
              unsigned Items = 0;
              bool Simple = true;
              for (const SpmdStmt &B : S.Body) {
                if (B.K == SpmdStmt::Kind::PackElem ||
                    B.K == SpmdStmt::Kind::UnpackElem)
                  ++Items;
                else if (B.K != SpmdStmt::Kind::SetVar)
                  Simple = false;
              }
              if (Simple && Items == 1) {
                uint64_t Trip =
                    static_cast<uint64_t>(addChk(subChk(Hi, Lo), 1));
                Count += Trip;
                Cursor += Trip;
                break;
              }
            }
            for (IntT I = Lo; I <= Hi; ++I) {
              V.Env[S.Var] = I;
              RunItems(S.Body, PackOut, UnpackIn, Cursor, Count);
            }
            break;
          }
          case SpmdStmt::Kind::PackElem: {
            ++Count;
            if (PackOut && Opts.Functional) {
              std::vector<IntT> Idx;
              for (const AffineExpr &E : S.Indices)
                Idx.push_back(E.evaluate(V.Env));
              IntT Flat = flatIndex(S.ArrayId, Idx);
              auto It = V.Store.find({S.ArrayId, Flat});
              if (It == V.Store.end())
                fatalError("locality violation: sending a value the "
                           "processor does not hold");
              PackOut->push_back(It->second);
            }
            break;
          }
          case SpmdStmt::Kind::UnpackElem: {
            ++Count;
            if (UnpackIn && Opts.Functional) {
              if (Cursor >= UnpackIn->size())
                fatalError("message shorter than the receiver expects");
              std::vector<IntT> Idx;
              for (const AffineExpr &E : S.Indices)
                Idx.push_back(E.evaluate(V.Env));
              V.Store[{S.ArrayId, flatIndex(S.ArrayId, Idx)}] =
                  (*UnpackIn)[Cursor];
            }
            ++Cursor;
            break;
          }
          default:
            fatalError("communication inside a message body");
          }
        }
      };

  while (!V.Stack.empty() && Slice-- > 0) {
    Frame &F = V.Stack.back();
    if (F.Pos >= F.List->size()) {
      if (F.LoopStmt && ++F.LoopCur <= F.LoopHi) {
        V.Env[F.LoopStmt->Var] = F.LoopCur;
        F.Pos = 0;
        continue;
      }
      V.Stack.pop_back();
      continue;
    }
    const SpmdStmt &St = (*F.List)[F.Pos];
    if (Ctx.GateCheckpoints && NextCheckpointEvents != 0 &&
        addSat(Ctx.EventsBase, Ctx.Executed) >= NextCheckpointEvents)
      // A checkpoint is due: pause at this statement boundary so the
      // scheduler can draw the line once every processor has yielded.
      return Ran;
    if (CrashActive && !HasCrashed[V.Id] && Faults.crashAt(V.Id, V.Steps)) {
      // Crash-stop failure: the processor dies immediately before this
      // statement and executes nothing further. HasCrashed survives the
      // rollback, so the restarted incarnation replays through this
      // point unharmed — one crash per processor, which bounds the
      // number of rollbacks by the processor count.
      HasCrashed[V.Id] = 1;
      V.Crashed = true;
      Ctx.Crashes.push_back(CrashEvent{V.Coord, V.Phys, V.Steps, Clock});
      ++Ctx.C.Crashes;
      return Ran;
    }
    ++Ctx.Executed;
    if (addSat(Ctx.EventsBase, Ctx.Executed) > Opts.MaxEvents)
      fatalError("simulation event budget exhausted");
    ++V.Steps;
    switch (St.K) {
    case SpmdStmt::Kind::Seq: {
      ++F.Pos;
      Frame NF;
      NF.List = &St.Body;
      V.Stack.push_back(NF);
      break;
    }
    case SpmdStmt::Kind::For: {
      ++F.Pos;
      IntT Lo = evalBoundList(St.Lower, V.Env, true);
      IntT Hi = evalBoundList(St.Upper, V.Env, false);
      if (Lo > Hi)
        break;
      if (!Opts.Functional && Opts.CollapseLoops && isCollapsible(St)) {
        uint64_t Trip = static_cast<uint64_t>(addChk(subChk(Hi, Lo), 1));
        double C = 0;
        for (const SpmdStmt &B : St.Body)
          if (B.K == SpmdStmt::Kind::Compute) {
            C += statementCost(P.statement(B.StmtId));
            Ctx.C.Flops += Trip * countFlops(P.statement(B.StmtId));
            Ctx.C.ComputeIterations += Trip;
          }
        Clock += Trip * C * SF;
        Busy += Trip * C * SF;
        BusyCompute[V.Phys] += Trip * C * SF;
        break;
      }
      V.Env[St.Var] = Lo;
      Frame NF;
      NF.List = &St.Body;
      NF.LoopStmt = &St;
      NF.LoopCur = Lo;
      NF.LoopHi = Hi;
      V.Stack.push_back(NF);
      break;
    }
    case SpmdStmt::Kind::If: {
      ++F.Pos;
      if (condsHold(St.Conds, V.Env)) {
        Frame NF;
        NF.List = &St.Body;
        V.Stack.push_back(NF);
      }
      break;
    }
    case SpmdStmt::Kind::SetVar:
      V.Env[St.Var] = St.ValueDen == 1
                          ? St.Value.evaluate(V.Env)
                          : floorDiv(St.Value.evaluate(V.Env),
                                     St.ValueDen);
      ++F.Pos;
      break;
    case SpmdStmt::Kind::Compute: {
      execComputeIter(V, St);
      double C = statementCost(P.statement(St.StmtId)) * SF;
      Clock += C;
      Busy += C;
      BusyCompute[V.Phys] += C;
      Ctx.C.Flops += countFlops(P.statement(St.StmtId));
      ++Ctx.C.ComputeIterations;
      V.LastMulticastComm = -1;
      ++F.Pos;
      break;
    }
    case SpmdStmt::Kind::Send: {
      std::vector<IntT> Dst;
      for (const AffineExpr &E : St.Peer)
        Dst.push_back(E.evaluate(V.Env));
      Message M;
      if (St.IsMulticast &&
          V.CachedPackComm == static_cast<int>(St.CommId) &&
          V.LastMulticastComm == static_cast<int>(St.CommId)) {
        // Multicast content is receiver-independent (Section 6.2.1):
        // reuse the packing from the burst's first destination.
        M.Data = V.CachedData;
        M.WordCount = V.CachedCount;
      } else {
        uint64_t Cursor = 0, Count = 0;
        std::vector<double> Data;
        RunItems(St.Body, &Data, nullptr, Cursor, Count);
        M.Data = std::move(Data);
        M.WordCount = Count;
        if (St.IsMulticast) {
          V.CachedPackComm = static_cast<int>(St.CommId);
          V.CachedData = M.Data;
          V.CachedCount = M.WordCount;
        } else {
          V.CachedPackComm = -1;
        }
      }
      unsigned DstPhys = physOf(Dst);
      bool Intra = DstPhys == V.Phys;
      // Straggler-link latency multiplier for this directed physical
      // link: exactly 1.0 (cost-neutral) unless slow-link injection is
      // configured. Pure in (seed, src phys, dst phys), so the factor is
      // identical across engines and scheduler interleavings.
      const double LinkF =
          Opts.Faults.slowLinks() ? Faults.linkFactor(V.Phys, DstPhys)
                                  : 1.0;
      bool InBurst = St.IsMulticast &&
                     V.LastMulticastComm == static_cast<int>(St.CommId);
      if (!InBurst)
        V.BurstPhys.clear();
      // Nonblocking (early) send: the CPU pays only the issue/pack
      // cost, the per-physical NIC carries the fixed latency (and any
      // retransmission work) while the processor keeps computing
      // (DESIGN.md §11). Message contents, sequence numbers and queue
      // order are untouched — only clocks move.
      const bool Early = Opts.EarlySends && St.Nonblocking;
      M.FromMulticast = St.IsMulticast;
      // Tag for the threaded engine's visibility rule; the sequential
      // engine never reads these.
      M.SenderId = V.Id;
      M.PushRound = Ctx.Round;
      std::vector<IntT> Key;
      Key.push_back(static_cast<IntT>(St.CommId));
      for (IntT C2 : V.Coord)
        Key.push_back(C2);
      for (IntT C2 : Dst)
        Key.push_back(C2);
      if (Intra && Opts.FreeIntraPhysical) {
        // A local memory move: never exposed to network faults, but
        // still sequenced when the transport is engaged — the receive
        // path matches sequence numbers on every channel, and the
        // rollback line is defined by a uniform per-channel cursor.
        ++Ctx.C.IntraMessages;
        M.ReadyTime = Clock;
        auto CG = ChanGuard();
        if (Faults.active()) {
          M.Seq = SendSeq[Key]++;
          if (M.Seq < RecvSeq[Key]) {
            // Replay of a send the receiver consumed before the
            // rollback line: suppressed on arrival.
            ++Ctx.C.DuplicatesSuppressed;
          } else {
            Queues[Key].push_back(std::move(M));
            if (Ctx.EE)
              Ctx.EE->notifyPush(Key);
          }
        } else {
          Queues[Key].push_back(std::move(M));
          if (Ctx.EE)
            Ctx.EE->notifyPush(Key);
        }
      } else if (Faults.active()) {
        // Reliable transport: stop-and-wait per packet with acks and
        // bounded exponential-backoff retransmission. Every receiver is
        // its own acknowledged channel, so the multicast burst
        // wire-sharing shortcut does not apply here.
        uint64_t Chan = FaultModel::channelId(St.CommId, V.Coord, Dst);
        auto CG = ChanGuard();
        uint64_t Seq = SendSeq[Key]++;
        M.Seq = Seq;
        // During post-rollback replay the receiver may already be past
        // this sequence number (it consumed the original before the
        // checkpoint line): deliveries are then acknowledged but
        // suppressed on arrival, never enqueued. Impossible outside
        // replay — a fresh sequence number is never below the window.
        const bool BelowWindow = Seq < RecvSeq[Key];
        double SendCost =
            (Opts.Cost.MsgLatency + M.WordCount * Opts.Cost.SendPerWord) *
            SF;
        double IssueCost =
            (Opts.Cost.SendIssueOverhead +
             M.WordCount * Opts.Cost.SendPerWord) *
            SF;
        double Start;
        if (Early) {
          // Issue: the CPU hands the packet to the NIC and moves on;
          // the stop-and-wait attempts below run on the NIC, which
          // serializes this physical processor's in-flight sends.
          Clock += IssueCost;
          Busy += IssueCost;
          BusyProtocol[V.Phys] += IssueCost;
          Start = std::max(Clock, NetFree[V.Phys]);
        } else {
          Start = Clock;
        }
        double DeliverLat =
            (Opts.Cost.MsgLatency +
             static_cast<double>(M.WordCount) *
                 Opts.Cost.WireTimePerWord) *
            LinkF;
        // Widened: MaxRetries == UINT_MAX must mean "retry forever",
        // not wrap MaxAttempts to 0 (which skipped the attempt loop,
        // silently dropped the packet, and underflowed Made - 1 below).
        const uint64_t MaxAttempts =
            static_cast<uint64_t>(Opts.Faults.MaxRetries) + 1;
        unsigned Made = 0;
        bool Delivered = false, Acked = false;
        double Offset = 0; // accumulated backoff before each attempt
        for (uint64_t A = 0; A != MaxAttempts && !Acked; ++A) {
          Offset += Faults.backoffDelay(A);
          ++Made;
          if (Faults.partitioned(Chan, Seq, A)) {
            // Transient partition: the link blackholes this attempt
            // (and would its ack); the sender's exponential backoff
            // eventually spans the seeded outage.
            ++Ctx.C.PartitionDrops;
            continue;
          }
          if (Faults.dropData(Chan, Seq, A)) {
            ++Ctx.C.DroppedPackets;
            continue;
          }
          if (Faults.corruptData(Chan, Seq, A)) {
            // Checksum failure at the receiver: the corrupted copy is
            // discarded and a NACK triggers the next retransmission.
            ++Ctx.C.CorruptedPackets;
            ++Ctx.C.NacksSent;
            continue;
          }
          Delivered = true;
          if (BelowWindow) {
            ++Ctx.C.DuplicatesSuppressed;
          } else {
            Message Copy = M;
            Copy.ReadyTime = Start + Offset + SendCost + DeliverLat +
                             Faults.deliveryDelay(Chan, Seq, A, 0);
            Queues[Key].push_back(std::move(Copy));
            if (Ctx.EE)
              Ctx.EE->notifyPush(Key);
          }
          ++Ctx.C.AcksSent; // the receiver acknowledges this copy
          if (Faults.duplicate(Chan, Seq, A)) {
            if (BelowWindow) {
              ++Ctx.C.DuplicatesSuppressed;
            } else {
              Message Dup = M;
              Dup.ReadyTime = Start + Offset + SendCost + DeliverLat +
                              Faults.deliveryDelay(Chan, Seq, A, 1);
              Queues[Key].push_back(std::move(Dup));
              if (Ctx.EE)
                Ctx.EE->notifyPush(Key);
            }
            ++Ctx.C.AcksSent;
          }
          if (!Faults.dropAck(Chan, Seq, A))
            Acked = true;
        }
        Ctx.C.Retransmissions += Made - 1;
        // Messages/Words stay logical (one per app-level send) so the
        // counters remain comparable across fault schedules; the wire
        // overhead shows up in Retransmissions and the clocks.
        ++Ctx.C.Messages;
        Ctx.C.Words += M.WordCount;
        if (LinkF > 1.0)
          ++Ctx.C.SlowLinkMessages;
        if (Early) {
          // The NIC is busy through every attempt's backoff plus the
          // final transmission; the CPU already paid IssueCost and
          // keeps computing. Only the not-also-on-CPU share counts as
          // deferred.
          NetFree[V.Phys] = Start + Offset + SendCost;
          NetDeferred[V.Phys] += SendCost - IssueCost;
          ++Ctx.C.EarlySends;
        } else {
          Clock += SendCost;
          Busy += SendCost * Made;
          BusyProtocol[V.Phys] += SendCost * Made;
        }
        if (!Delivered)
          Ctx.Failures.push_back(
              TransportFailure{St.CommId, V.Coord, Dst, Seq, Made});
      } else if (InBurst && V.BurstPhys.count(DstPhys)) {
        // Same physical processor already got this content in the burst:
        // one wire message serves every folded virtual processor.
        ++Ctx.C.IntraMessages;
        M.ReadyTime = V.BurstReady;
        auto CG = ChanGuard();
        Queues[Key].push_back(std::move(M));
        if (Ctx.EE)
          Ctx.EE->notifyPush(Key);
      } else {
        const bool ExtraDest = InBurst && !V.BurstPhys.empty();
        double C;
        if (ExtraDest)
          C = Opts.Cost.MulticastExtraDest;
        else
          C = Opts.Cost.MsgLatency + M.WordCount * Opts.Cost.SendPerWord;
        ++Ctx.C.Messages;
        Ctx.C.Words += M.WordCount;
        if (LinkF > 1.0)
          ++Ctx.C.SlowLinkMessages;
        if (Early) {
          // The CPU pays only the pack + issue overhead; the fixed
          // per-message latency runs on the NIC, which serializes this
          // physical processor's outstanding sends. The NIC cuts
          // through — protocol processing pipelines into the flight —
          // so the consumer-visible path carries one MsgLatency where
          // the blocking rendezvous pays it twice (sender software,
          // then wire).
          double CpuC =
              Opts.Cost.SendIssueOverhead +
              (ExtraDest ? 0.0 : M.WordCount * Opts.Cost.SendPerWord);
          double NicC = ExtraDest ? Opts.Cost.MulticastExtraDest
                                  : Opts.Cost.MsgLatency;
          Clock += CpuC;
          Busy += CpuC;
          BusyProtocol[V.Phys] += CpuC;
          double Done = std::max(Clock, NetFree[V.Phys]) + NicC;
          NetFree[V.Phys] = Done;
          NetDeferred[V.Phys] += C - CpuC;
          ++Ctx.C.EarlySends;
          M.ReadyTime = Done + static_cast<double>(M.WordCount) *
                                   Opts.Cost.WireTimePerWord * LinkF;
        } else {
          Clock += C;
          Busy += C;
          BusyProtocol[V.Phys] += C;
          M.ReadyTime = Clock + (Opts.Cost.MsgLatency +
                                 static_cast<double>(M.WordCount) *
                                     Opts.Cost.WireTimePerWord) *
                                    LinkF;
        }
        V.BurstPhys.insert(DstPhys);
        V.BurstReady = M.ReadyTime;
        auto CG = ChanGuard();
        Queues[Key].push_back(std::move(M));
        if (Ctx.EE)
          Ctx.EE->notifyPush(Key);
      }
      V.LastMulticastComm = St.IsMulticast ? static_cast<int>(St.CommId)
                                           : -1;
      ++F.Pos;
      break;
    }
    case SpmdStmt::Kind::Recv: {
      std::vector<IntT> Src;
      for (const AffineExpr &E : St.Peer)
        Src.push_back(E.evaluate(V.Env));
      std::vector<IntT> Key;
      Key.push_back(static_cast<IntT>(St.CommId));
      for (IntT C2 : Src)
        Key.push_back(C2);
      for (IntT C2 : V.Coord)
        Key.push_back(C2);
      bool Transport = Faults.active();
      // Threaded wavefront rule: within a round the sequential scheduler
      // runs lower-index processors' slices first, so their pushes this
      // round ARE visible to this receive — the worker must wait for such
      // a sender to finish its slice before it can conclude anything
      // about the channel. With the transport engaged the wait is strict
      // (before the first poll): rollback replay can interleave surviving
      // in-flight copies with replayed same-sequence pushes, so even a
      // deliverable-looking queue is not decisive until the sender's
      // slice is complete.
      unsigned SenderIdx = 0;
      const bool SenderBelow =
          TE && procIndexOf(Src, SenderIdx) && SenderIdx < V.Id;
      if (SenderBelow && Transport)
        TE->waitProcDone(SenderIdx, Ctx.Round);
      Message M;
      uint64_t Expect = 0;
      for (;;) {
        auto CG = ChanGuard();
        auto It = Queues.find(Key);
        Expect = Transport ? RecvSeq[Key] : 0;
        // A message is visible if the sequential engine would have
        // enqueued it by the time this receive runs: pushed in an
        // earlier round, or this round by a sender whose slice the
        // sequential scheduler runs no later than ours. One channel has
        // one sender, so visibility is a queue prefix.
        auto VisibleAt = [&](const Message &Cand) {
          return !TE || Cand.PushRound < Ctx.Round ||
                 Cand.SenderId <= V.Id;
        };
        // Which queued message can this receive consume? Without the
        // transport: the front (FIFO). With it: the earliest-arriving
        // copy carrying exactly the expected sequence number; later
        // sequence numbers may already be buffered (reordered delivery)
        // but must wait their turn.
        int Pick = -1;
        uint64_t Visible = 0;
        if (It != Queues.end()) {
          if (!Transport) {
            for (const Message &Cand : It->second)
              if (VisibleAt(Cand))
                ++Visible;
            if (Visible != 0)
              Pick = 0;
          } else {
            for (unsigned I = 0; I != It->second.size(); ++I) {
              const Message &Cand = It->second[I];
              if (!VisibleAt(Cand))
                continue;
              ++Visible;
              if (Cand.Seq != Expect)
                continue;
              if (Pick < 0 ||
                  Cand.ReadyTime <
                      It->second[static_cast<unsigned>(Pick)].ReadyTime)
                Pick = static_cast<int>(I);
            }
          }
        }
        if (Pick < 0) {
          // Nothing deliverable. If a lower-index sender has not yet
          // finished its slice this round, its (visible) push may still
          // be coming: wait and re-poll rather than block.
          if (SenderBelow && !TE->procDone(SenderIdx, Ctx.Round)) {
            CG.unlock();
            TE->waitProcDone(SenderIdx, Ctx.Round);
            continue;
          }
          // A blocked receive attempt is NOT progress: if every
          // processor ends up here, the scheduler must report deadlock
          // rather than spin retrying. Record what we were waiting for
          // so the detector can name it. The visible count equals the
          // sequential queue size at every stall fixed-point (a
          // no-progress round pushes nothing).
          V.Blocked = true;
          V.LastBlock.Coord = V.Coord;
          V.LastBlock.Phys = V.Phys;
          V.LastBlock.CommId = St.CommId;
          V.LastBlock.Peer = Src;
          V.LastBlock.ExpectedSeq = Expect;
          V.LastBlock.BufferedAhead = Visible;
          --Ctx.Executed;
          --V.Steps;
          return Ran;
        }
        M = std::move(It->second[static_cast<unsigned>(Pick)]);
        It->second.erase(It->second.begin() + Pick);
        if (Transport) {
          // Suppress every other copy of this packet (wire duplicates
          // and retransmissions whose ack was lost). Invisible copies
          // with this sequence number are suppressed too: the
          // sequential engine would have suppressed them at send time
          // (the receiver's cursor is already past them when the sender
          // runs later in the round), so totals and final queue state
          // agree either way.
          for (unsigned I = 0; I != It->second.size();) {
            if (It->second[I].Seq == Expect) {
              It->second.erase(It->second.begin() + I);
              ++Ctx.C.DuplicatesSuppressed;
            } else {
              ++I;
            }
          }
          RecvSeq[Key] = Expect + 1;
        }
        break;
      }
      Ran = true;
      if (M.ReadyTime > Clock)
        Clock = M.ReadyTime; // waiting, not busy
      uint64_t Cursor = 0, Count = 0;
      RunItems(St.Body, nullptr, &M.Data, Cursor, Count);
      if (Count != M.WordCount)
        fatalError("message length mismatch between sender and receiver");
      double C = M.FromMulticast
                     ? 0.0
                     : static_cast<double>(Count) * Opts.Cost.RecvPerWord;
      if (Transport)
        C += Opts.Cost.MsgLatency; // acknowledgement transmission
      C *= SF;
      Clock += C;
      Busy += C;
      BusyProtocol[V.Phys] += C;
      V.LastMulticastComm = -1;
      ++F.Pos;
      break;
    }
    case SpmdStmt::Kind::PackElem:
    case SpmdStmt::Kind::UnpackElem:
      fatalError("pack/unpack outside a message body");
    }
    Ran = true;
  }
  if (V.Stack.empty())
    V.Finished = true;
  return Ran;
}

void Simulator::fillRecoverySplit(SimResult &R) const {
  R.Recovery.ComputeSeconds = 0;
  R.Recovery.ProtocolSeconds = 0;
  R.Recovery.CheckpointSeconds = 0;
  for (unsigned Ph = 0, E = PhysClock.size(); Ph != E; ++Ph) {
    R.Recovery.ComputeSeconds += BusyCompute[Ph];
    R.Recovery.ProtocolSeconds += BusyProtocol[Ph];
    R.Recovery.CheckpointSeconds += BusyCheckpoint[Ph];
  }
  R.Recovery.RecoverySeconds = RecoveryExtraSeconds;
}

Simulator::RoundFlags Simulator::runRoundSequential() {
  RoundFlags F;
  for (VirtProc &V : Procs) {
    if (V.Crashed) {
      // Dead until a rollback reincarnates it.
      F.AllDone = false;
      F.AnyDead = true;
      continue;
    }
    if (V.Finished)
      continue;
    V.Blocked = false;
    StepCtx Ctx{Ctr, Failures, CrashLog};
    Ctx.EventsBase = Events;
    if (stepProc(V, Ctx))
      F.Progress = true;
    Events += Ctx.Executed;
    if (V.Crashed)
      F.AnyDead = true;
    if (!V.Finished)
      F.AllDone = false;
  }
  return F;
}

SimResult Simulator::run() {
  SimResult R;
  const bool Recovery = Opts.Checkpoint.enabled();
  if (Opts.Engine == SimEngine::Event && Opts.Threads != 1)
    fatalError("Simulator: the event engine is single-threaded; "
               "SimEngine::Event requires Threads == 1");
  const unsigned Workers = effectiveWorkers();
  std::unique_ptr<ThreadEngine> TE;
  if (Workers > 1)
    TE = std::make_unique<ThreadEngine>(*this, Workers);
  if (Recovery) {
    // Free initial checkpoint: the staged input state itself is the
    // rollback line until the first interval elapses. In durable-resume
    // mode the newest intact on-disk image replaces it — the restored
    // line already exists on disk, so no fresh initial snapshot is
    // taken and replay continues bit-identically to the uninterrupted
    // run. With no usable image the run starts (and persists) fresh.
    NextCheckpointEvents = Opts.Checkpoint.IntervalSteps;
    if (!(Opts.Checkpoint.Resume && Opts.Checkpoint.durable() &&
          resumeFromDurable(R)))
      takeCheckpoint(R, /*Initial=*/true);
  }
  // Built after the prologue: a durable resume changes which processors
  // are already finished, and reset() reads those flags.
  std::unique_ptr<EventEngine> EE;
  if (Opts.Engine == SimEngine::Event)
    EE = std::make_unique<EventEngine>(*this);
  while (true) {
    RoundFlags F = TE   ? TE->runRound()
                   : EE ? EE->runRound()
                        : runRoundSequential();
    if (F.AllDone) {
      R.Ok = true;
      break;
    }
    // Coordinated checkpoint at the round boundary — a consistent cut
    // by construction (every processor paused at a statement boundary
    // once the interval elapsed). Never snapshot while a processor is
    // dead: its volatile state is gone, and the pre-crash line must
    // stay available for rollback.
    if (Recovery && !F.AnyDead && Events >= NextCheckpointEvents) {
      takeCheckpoint(R, /*Initial=*/false);
      continue;
    }
    if (!F.Progress) {
      // Machine stalled. With dead processors and a rollback line this
      // is the (abstracted) failure detection point: roll back and
      // replay. Anything else is terminal.
      if (F.AnyDead && Recovery &&
          R.Recovery.Rollbacks < Opts.Checkpoint.MaxRollbacks) {
        restoreCheckpoint(R);
        if (EE)
          EE->reset(); // everyone reincarnated and unblocked
        continue;
      }
      reportStall(R);
      fillRecoverySplit(R);
      flushCounters(R);
      return R;
    }
  }
  // Undelivered messages indicate a send/receive mismatch.
  uint64_t Leftover = 0;
  for (const auto &[Key, Q] : Queues)
    Leftover += Q.size();
  if (Leftover != 0) {
    R.Ok = false;
    R.Diag.InFlightMessages = Leftover;
    R.Diag.RetryExhausted = Failures;
    R.Diag.TotalProcs = Procs.size();
    R.Diag.FinishedProcs = Procs.size();
    R.Error = "unconsumed messages remain in the network (" +
              std::to_string(Leftover) + " copies)";
    fillRecoverySplit(R);
    flushCounters(R);
    return R;
  }
  if (!Failures.empty()) {
    // Every processor finished yet some packet exhausted its retries:
    // the program never waited for it, which is a compilation bug.
    R.Ok = false;
    R.Diag.RetryExhausted = Failures;
    R.Diag.TotalProcs = Procs.size();
    R.Diag.FinishedProcs = Procs.size();
    R.Error = "transport gave up on " +
              std::to_string(Failures.size()) +
              " packet(s) nobody was waiting for";
    fillRecoverySplit(R);
    flushCounters(R);
    return R;
  }
  R.TotalEvents = Events;
  // Drain the NICs: a processor whose network interface is still
  // pushing out an early send is finished computing but not done — the
  // remaining occupancy is exposed (un-overlapped) latency and counts
  // toward the makespan, though not toward busy time.
  for (unsigned Ph = 0, E2 = static_cast<unsigned>(PhysClock.size());
       Ph != E2; ++Ph)
    if (NetFree[Ph] > PhysClock[Ph]) {
      NetExposed[Ph] += NetFree[Ph] - PhysClock[Ph];
      PhysClock[Ph] = NetFree[Ph];
    }
  R.MakespanSeconds = 0;
  for (double C : PhysClock)
    R.MakespanSeconds = std::max(R.MakespanSeconds, C);
  R.PhysBusy = PhysBusy;
  fillRecoverySplit(R);
  flushCounters(R);
  return R;
}

//===----------------------------------------------------------------------===//
// Checkpoint / restart
//===----------------------------------------------------------------------===//

void Simulator::takeCheckpoint(SimResult &R, bool Initial) {
  const unsigned Dims = CP.Spmd.GridDims;
  auto CK = std::make_unique<Checkpoint>();
  CK->Procs.reserve(Procs.size());
  std::vector<uint64_t> WordsPerPhys(PhysClock.size(), 0);
  for (const VirtProc &V : Procs) {
    Checkpoint::ProcState PS;
    PS.Env = V.Env;
    PS.ProgEnv = V.ProgEnv;
    PS.Stack = V.Stack;
    PS.Finished = V.Finished;
    PS.Steps = V.Steps;
    PS.Store = V.Store;
    PS.LastMulticastComm = V.LastMulticastComm;
    PS.BurstPhys = V.BurstPhys;
    PS.BurstReady = V.BurstReady;
    PS.CachedPackComm = V.CachedPackComm;
    PS.CachedData = V.CachedData;
    PS.CachedCount = V.CachedCount;
    // Snapshot footprint: array partition + environments + loop cursors
    // (4 words per live frame) + the cached multicast packing.
    WordsPerPhys[V.Phys] += V.Store.size() + V.Env.size() +
                            V.ProgEnv.size() + 4 * V.Stack.size() +
                            V.CachedData.size();
    CK->Procs.push_back(std::move(PS));
  }
  CK->Queues = Queues;
  for (const auto &[Key, Q] : Queues) {
    // Receive buffers are part of the channel state; they are
    // checkpointed where they live, on the receiver.
    std::vector<IntT> DstCoord(Key.end() - Dims, Key.end());
    unsigned Ph = physOf(DstCoord);
    for (const Message &M : Q)
      WordsPerPhys[Ph] += M.WordCount + 2; // payload + header
  }
  CK->SendSeq = SendSeq;
  CK->RecvSeq = RecvSeq;
  CK->Failures = Failures;
  CK->Messages = Ctr.Messages;
  CK->IntraMessages = Ctr.IntraMessages;
  CK->Words = Ctr.Words;
  CK->Flops = Ctr.Flops;
  CK->ComputeIterations = Ctr.ComputeIterations;
  CK->EventsAtTaken = Events;
  CK->WordsPerPhys = WordsPerPhys;

  uint64_t TotalWords = 0;
  for (uint64_t W : WordsPerPhys)
    TotalWords = addSat(TotalWords, W);
  ++R.Recovery.CheckpointsTaken;
  R.Recovery.CheckpointBytes =
      addSat(R.Recovery.CheckpointBytes, mulSat(TotalWords, 8));

  if (!Initial) {
    // Coordinated: every processor synchronizes at the line, then
    // writes its state to the stable store.
    double Line = 0;
    for (double C : PhysClock)
      Line = std::max(Line, C);
    for (unsigned Ph = 0, E = PhysClock.size(); Ph != E; ++Ph) {
      double C = Opts.Checkpoint.LatencySeconds +
                 static_cast<double>(WordsPerPhys[Ph]) *
                     Opts.Checkpoint.PerWordSeconds;
      PhysClock[Ph] = Line + C;
      PhysBusy[Ph] += C;
      BusyCheckpoint[Ph] += C;
    }
  }
  // Bucket snapshot taken after charging: the checkpoint's own cost is
  // inside its line and is never treated as undone work.
  CK->BusyCompute = BusyCompute;
  CK->BusyProtocol = BusyProtocol;
  CK->BusyCheckpoint = BusyCheckpoint;

  Stable = std::move(CK);
  // Saturating: an interval near 2^64 must disable further triggers,
  // not wrap the trigger behind Events (a permanently-armed gate turns
  // every subsequent round into a checkpoint livelock).
  NextCheckpointEvents = addSat(Events, Opts.Checkpoint.IntervalSteps);
  ReplayBaseEvents = Events;

  // Durable mode (DESIGN.md §13): the line just drawn also goes to the
  // host filesystem, so a SIGKILL of this process loses at most the
  // work since this checkpoint.
  if (Opts.Checkpoint.durable())
    persistDurable(R);
}

void Simulator::restoreCheckpoint(SimResult &R) {
  const Checkpoint &CK = *Stable;
  ++R.Recovery.Rollbacks;
  R.Recovery.ReplayedSteps += Events - ReplayBaseEvents;
  R.Recovery.ReplayedMessages +=
      (Ctr.Messages + Ctr.IntraMessages) -
      (CK.Messages + CK.IntraMessages);

  // Work done past the line is undone: move it into the recovery bucket
  // so Compute/Protocol/Checkpoint keep charging each useful unit once.
  for (unsigned Ph = 0, E = PhysClock.size(); Ph != E; ++Ph)
    RecoveryExtraSeconds += (BusyCompute[Ph] - CK.BusyCompute[Ph]) +
                            (BusyProtocol[Ph] - CK.BusyProtocol[Ph]) +
                            (BusyCheckpoint[Ph] - CK.BusyCheckpoint[Ph]);
  BusyCompute = CK.BusyCompute;
  BusyProtocol = CK.BusyProtocol;
  BusyCheckpoint = CK.BusyCheckpoint;

  // Rewind the logical counters: a recovered run reports the same
  // logical traffic and arithmetic as a fault-free one. The wire-level
  // transport counters stay monotonic.
  Ctr.Messages = CK.Messages;
  Ctr.IntraMessages = CK.IntraMessages;
  Ctr.Words = CK.Words;
  Ctr.Flops = CK.Flops;
  Ctr.ComputeIterations = CK.ComputeIterations;
  Failures = CK.Failures;

  // Reincarnate every processor from its snapshot. HasCrashed is NOT
  // restored: a processor's one scheduled crash stays spent, so replay
  // passes through the crash point unharmed.
  for (unsigned I = 0, E = Procs.size(); I != E; ++I) {
    VirtProc &V = Procs[I];
    const Checkpoint::ProcState &PS = CK.Procs[I];
    V.Env = PS.Env;
    V.ProgEnv = PS.ProgEnv;
    V.Stack = PS.Stack;
    V.Finished = PS.Finished;
    V.Steps = PS.Steps;
    V.Store = PS.Store;
    V.LastMulticastComm = PS.LastMulticastComm;
    V.BurstPhys = PS.BurstPhys;
    V.BurstReady = PS.BurstReady;
    V.CachedPackComm = PS.CachedPackComm;
    V.CachedData = PS.CachedData;
    V.CachedCount = PS.CachedCount;
    V.Crashed = false;
    V.Blocked = false;
  }

  // Channel state: the checkpointed receive buffers, plus whatever was
  // still in flight from sends made after the line (sequence number at
  // or past the checkpointed sender cursor — those sends will NOT be
  // replayed from a pre-line sender state, so their copies must
  // survive). Copies below the line are replaced by the snapshot's own
  // queue contents; replayed sends that the receiver already consumed
  // are suppressed on arrival by the sequence-number window.
  std::map<std::vector<IntT>, std::vector<Message>> Merged = CK.Queues;
  for (auto &[Key, Q] : Queues) {
    auto It = CK.SendSeq.find(Key);
    uint64_t Line = It == CK.SendSeq.end() ? 0 : It->second;
    for (Message &M : Q)
      if (M.Seq >= Line)
        Merged[Key].push_back(std::move(M));
  }
  Queues = std::move(Merged);
  SendSeq = CK.SendSeq;
  RecvSeq = CK.RecvSeq;

  // Clocks never rewind: survivors sit through the failure-detection
  // window, then every processor reads the checkpoint back from the
  // stable store.
  double Line = 0;
  for (double C : PhysClock)
    Line = std::max(Line, C);
  Line += Opts.Checkpoint.DetectSeconds;
  RecoveryExtraSeconds += Opts.Checkpoint.DetectSeconds;
  for (unsigned Ph = 0, E = PhysClock.size(); Ph != E; ++Ph) {
    double C = Opts.Checkpoint.RestoreLatencySeconds +
               static_cast<double>(CK.WordsPerPhys[Ph]) *
                   Opts.Checkpoint.RestorePerWordSeconds;
    PhysClock[Ph] = Line + C;
    PhysBusy[Ph] += C;
    RecoveryExtraSeconds += C;
  }
  ReplayBaseEvents = Events;
  NextCheckpointEvents = addSat(Events, Opts.Checkpoint.IntervalSteps);
}

//===----------------------------------------------------------------------===//
// Durable stable store (DESIGN.md §13)
//===----------------------------------------------------------------------===//
//
// A durable image is one stable-store frame (type "CKPT") whose payload
// is a versioned, self-validating serialization of the FULL machine
// state at a checkpoint line — not just the logical Checkpoint contents:
// clocks, busy buckets, NIC state, monotonic counters, crash history and
// the partial SimResult accumulators all ride along, because a resumed
// process must report telemetry bit-identical to the uninterrupted run.
// Doubles travel as IEEE-754 bit patterns; call-stack frames are encoded
// as (is-loop, position, loop cursor/bound) paths and re-anchored onto
// the resumed process's deterministically recompiled SPMD tree.
//
// What is deliberately NOT serialized:
//  - Message::SenderId/PushRound: at a checkpoint line every queued
//    message was pushed in a strictly earlier round, so both are
//    normalized to 0, which the threaded engine's wavefront rule treats
//    as always-visible — exactly the visibility those messages had.
//  - SlowFactor and the fault schedule: recomputed from the seed.
//  - NextCheckpointEvents/ReplayBaseEvents: recomputed from Events.

namespace {

using stable::ByteReader;
using stable::ByteWriter;

/// Frame type tag of a checkpoint image ("CKPT").
constexpr uint32_t CkptFrameType = 0x434B5054u;
/// Bumped whenever the image payload layout changes; a mismatch makes
/// the resume scan skip the file as incompatible.
constexpr uint32_t CkptImageVersion = 1;

void writeI64Vec(ByteWriter &W, const std::vector<IntT> &V) {
  W.u64(V.size());
  for (IntT X : V)
    W.i64(X);
}

bool readI64Vec(ByteReader &Rd, std::vector<IntT> &V) {
  uint64_t N = Rd.u64();
  if (!Rd.ok() || N > Rd.remaining() / 8)
    return false;
  V.resize(N);
  for (uint64_t I = 0; I != N; ++I)
    V[I] = Rd.i64();
  return Rd.ok();
}

void writeF64Vec(ByteWriter &W, const std::vector<double> &V) {
  W.u64(V.size());
  for (double X : V)
    W.f64(X);
}

bool readF64Vec(ByteReader &Rd, std::vector<double> &V) {
  uint64_t N = Rd.u64();
  if (!Rd.ok() || N > Rd.remaining() / 8)
    return false;
  V.resize(N);
  for (uint64_t I = 0; I != N; ++I)
    V[I] = Rd.f64();
  return Rd.ok();
}

void writeFailure(ByteWriter &W, const TransportFailure &F) {
  W.u32(F.CommId);
  writeI64Vec(W, F.Src);
  writeI64Vec(W, F.Dst);
  W.u64(F.Seq);
  W.u32(F.Attempts);
}

bool readFailure(ByteReader &Rd, TransportFailure &F) {
  F.CommId = Rd.u32();
  if (!readI64Vec(Rd, F.Src) || !readI64Vec(Rd, F.Dst))
    return false;
  F.Seq = Rd.u64();
  F.Attempts = Rd.u32();
  return Rd.ok();
}

/// The on-disk filename of the image at global step \p Events,
/// zero-padded so lexicographic directory order is numeric order.
std::string ckptFileName(uint64_t Events) {
  char Name[48];
  std::snprintf(Name, sizeof(Name), "ckpt-%020llu.dmc",
                static_cast<unsigned long long>(Events));
  return Name;
}

} // namespace

void Simulator::persistDurable(const SimResult &R) {
  const Checkpoint &CK = *Stable;
  ByteWriter W;
  W.u32(CkptImageVersion);
  // Identity: a resumed process must be running the same deterministic
  // compilation with the same grid and parameters, or the encoded
  // call-stack paths and environments are meaningless.
  W.u64(Procs.size());
  W.u64(PhysClock.size());
  W.u32(CP.Spmd.GridDims);
  writeI64Vec(W, ParamEnv);

  // Machine position and counters.
  W.u64(Events);
  W.u64(Ctr.Messages);
  W.u64(Ctr.IntraMessages);
  W.u64(Ctr.Words);
  W.u64(Ctr.Flops);
  W.u64(Ctr.ComputeIterations);
  W.u64(Ctr.Retransmissions);
  W.u64(Ctr.DroppedPackets);
  W.u64(Ctr.DuplicatesSuppressed);
  W.u64(Ctr.AcksSent);
  W.u64(Ctr.CorruptedPackets);
  W.u64(Ctr.NacksSent);
  W.u64(Ctr.PartitionDrops);
  W.u64(Ctr.SlowLinkMessages);
  W.u64(Ctr.Crashes);
  W.u64(Ctr.EarlySends);

  // Partial SimResult accumulators: the run-so-far telemetry a fresh
  // SimResult in the resumed process has to inherit.
  W.u64(R.Recovery.CheckpointsTaken);
  W.u64(R.Recovery.CheckpointBytes);
  W.u64(R.Recovery.Rollbacks);
  W.u64(R.Recovery.ReplayedSteps);
  W.u64(R.Recovery.ReplayedMessages);
  W.f64(RecoveryExtraSeconds);

  // Clocks, busy buckets and NIC state (monotonic — never rewound, so
  // the in-memory Checkpoint omits them, but a resumed process needs
  // their values at the line).
  writeF64Vec(W, PhysClock);
  writeF64Vec(W, PhysBusy);
  writeF64Vec(W, BusyCompute);
  writeF64Vec(W, BusyProtocol);
  writeF64Vec(W, BusyCheckpoint);
  writeF64Vec(W, NetFree);
  writeF64Vec(W, NetDeferred);
  writeF64Vec(W, NetExposed);

  // Crash history: spent crash budgets and the event log.
  for (char C : HasCrashed)
    W.u8(static_cast<uint8_t>(C));
  W.u64(CrashLog.size());
  for (const CrashEvent &C : CrashLog) {
    writeI64Vec(W, C.Coord);
    W.u32(C.Phys);
    W.u64(C.AtStep);
    W.f64(C.AtTime);
  }
  W.u64(Failures.size());
  for (const TransportFailure &F : Failures)
    writeFailure(W, F);
  W.u64(CK.WordsPerPhys.size());
  for (uint64_t X : CK.WordsPerPhys)
    W.u64(X);

  // Per-processor logical state, exactly the in-memory Checkpoint's.
  for (const Checkpoint::ProcState &PS : CK.Procs) {
    writeI64Vec(W, PS.Env);
    writeI64Vec(W, PS.ProgEnv);
    W.u64(PS.Stack.size());
    for (const Frame &F : PS.Stack) {
      W.u8(F.LoopStmt ? 1 : 0);
      W.u64(F.Pos);
      W.i64(F.LoopCur);
      W.i64(F.LoopHi);
    }
    W.u8(PS.Finished ? 1 : 0);
    W.u64(PS.Steps);
    W.u64(PS.Store.size());
    for (const auto &[Key, Val] : PS.Store) {
      W.u32(Key.first);
      W.i64(Key.second);
      W.f64(Val);
    }
    W.i64(PS.LastMulticastComm);
    W.u64(PS.BurstPhys.size());
    for (unsigned Ph : PS.BurstPhys)
      W.u32(Ph);
    W.f64(PS.BurstReady);
    W.i64(PS.CachedPackComm);
    writeF64Vec(W, PS.CachedData);
    W.u64(PS.CachedCount);
  }

  // Channel state: receive queues and transport cursors.
  W.u64(CK.Queues.size());
  for (const auto &[Key, Q] : CK.Queues) {
    writeI64Vec(W, Key);
    W.u64(Q.size());
    for (const Message &M : Q) {
      writeF64Vec(W, M.Data);
      W.u64(M.WordCount);
      W.f64(M.ReadyTime);
      W.u8(M.FromMulticast ? 1 : 0);
      W.u64(M.Seq);
    }
  }
  auto WriteSeqMap = [&](const std::map<std::vector<IntT>, uint64_t> &M) {
    W.u64(M.size());
    for (const auto &[Key, Seq] : M) {
      writeI64Vec(W, Key);
      W.u64(Seq);
    }
  };
  WriteSeqMap(CK.SendSeq);
  WriteSeqMap(CK.RecvSeq);

  std::vector<uint8_t> Bytes = stable::encodeFrame(CkptFrameType, W.take());
  const std::string &Dir = Opts.Checkpoint.DurableDir;
  std::string Err;
  if (!stable::ensureDir(Dir, Err) ||
      !stable::atomicWriteFile(Dir + "/" + ckptFileName(Events), Bytes,
                               Err)) {
    std::string Msg = "durable checkpoint write failed: " + Err;
    fatalError(Msg.c_str());
  }
}

bool Simulator::resumeFromDurable(SimResult &R) {
  ResumeInfo.Attempted = true;
  const std::string &Dir = Opts.Checkpoint.DurableDir;
  std::vector<std::string> Files = stable::listFiles(Dir, "ckpt-", ".dmc");
  ResumeInfo.FilesSeen = static_cast<unsigned>(Files.size());

  // Parses one image payload and, only if EVERY field validates,
  // applies it to the machine. Returns false (state untouched) on any
  // structural damage or incompatibility.
  auto TryLoad = [&](const std::vector<uint8_t> &Payload) -> bool {
    ByteReader Rd(Payload);
    if (Rd.u32() != CkptImageVersion)
      return false;
    if (Rd.u64() != Procs.size() || Rd.u64() != PhysClock.size() ||
        Rd.u32() != CP.Spmd.GridDims)
      return false;
    std::vector<IntT> ImgParamEnv;
    if (!readI64Vec(Rd, ImgParamEnv) || ImgParamEnv != ParamEnv)
      return false;

    uint64_t ImgEvents = Rd.u64();
    SimCounters C;
    C.Messages = Rd.u64();
    C.IntraMessages = Rd.u64();
    C.Words = Rd.u64();
    C.Flops = Rd.u64();
    C.ComputeIterations = Rd.u64();
    C.Retransmissions = Rd.u64();
    C.DroppedPackets = Rd.u64();
    C.DuplicatesSuppressed = Rd.u64();
    C.AcksSent = Rd.u64();
    C.CorruptedPackets = Rd.u64();
    C.NacksSent = Rd.u64();
    C.PartitionDrops = Rd.u64();
    C.SlowLinkMessages = Rd.u64();
    C.Crashes = Rd.u64();
    C.EarlySends = Rd.u64();

    uint64_t CkTaken = Rd.u64(), CkBytes = Rd.u64(), Rollbacks = Rd.u64(),
             ReplayedSteps = Rd.u64(), ReplayedMessages = Rd.u64();
    double RecoveryExtra = Rd.f64();

    std::vector<double> Clock, Busy, BCompute, BProtocol, BCheckpoint,
        NFree, NDeferred, NExposed;
    if (!readF64Vec(Rd, Clock) || !readF64Vec(Rd, Busy) ||
        !readF64Vec(Rd, BCompute) || !readF64Vec(Rd, BProtocol) ||
        !readF64Vec(Rd, BCheckpoint) || !readF64Vec(Rd, NFree) ||
        !readF64Vec(Rd, NDeferred) || !readF64Vec(Rd, NExposed))
      return false;
    const size_t NPhys = PhysClock.size();
    if (Clock.size() != NPhys || Busy.size() != NPhys ||
        BCompute.size() != NPhys || BProtocol.size() != NPhys ||
        BCheckpoint.size() != NPhys || NFree.size() != NPhys ||
        NDeferred.size() != NPhys || NExposed.size() != NPhys)
      return false;

    std::vector<char> Crashed(Procs.size());
    for (char &Ch : Crashed)
      Ch = static_cast<char>(Rd.u8());
    uint64_t NCrash = Rd.u64();
    if (!Rd.ok() || NCrash > Rd.remaining() / 21)
      return false;
    std::vector<CrashEvent> Log(NCrash);
    for (CrashEvent &CE : Log) {
      if (!readI64Vec(Rd, CE.Coord))
        return false;
      CE.Phys = Rd.u32();
      CE.AtStep = Rd.u64();
      CE.AtTime = Rd.f64();
    }
    uint64_t NFail = Rd.u64();
    if (!Rd.ok() || NFail > Rd.remaining() / 24)
      return false;
    std::vector<TransportFailure> Fails(NFail);
    for (TransportFailure &F : Fails)
      if (!readFailure(Rd, F))
        return false;
    uint64_t NWpp = Rd.u64();
    if (NWpp != NPhys || !Rd.ok())
      return false;
    std::vector<uint64_t> Wpp(NWpp);
    for (uint64_t &X : Wpp)
      X = Rd.u64();

    auto Img = std::make_unique<Checkpoint>();
    Img->Procs.resize(Procs.size());
    for (unsigned I = 0, E = static_cast<unsigned>(Procs.size()); I != E;
         ++I) {
      Checkpoint::ProcState &PS = Img->Procs[I];
      if (!readI64Vec(Rd, PS.Env) || PS.Env.size() != Procs[I].Env.size())
        return false;
      if (!readI64Vec(Rd, PS.ProgEnv) ||
          PS.ProgEnv.size() != Procs[I].ProgEnv.size())
        return false;
      // Re-anchor the call stack onto this process's SPMD tree: each
      // frame's list is the body of the statement its parent frame
      // stands at (children are pushed after the parent's cursor
      // advanced, so parent.Pos - 1 names that statement).
      uint64_t NFrames = Rd.u64();
      if (!Rd.ok() || NFrames > Rd.remaining() / 25)
        return false;
      PS.Stack.reserve(NFrames);
      for (uint64_t K = 0; K != NFrames; ++K) {
        bool IsLoop = Rd.u8() != 0;
        uint64_t Pos = Rd.u64();
        IntT LoopCur = Rd.i64(), LoopHi = Rd.i64();
        if (!Rd.ok())
          return false;
        Frame F;
        if (K == 0) {
          if (IsLoop)
            return false; // the root frame is the Top sequence
          F.List = &CP.Spmd.Top;
        } else {
          const Frame &Par = PS.Stack.back();
          if (Par.Pos < 1 || Par.Pos > Par.List->size())
            return false;
          const SpmdStmt &St = (*Par.List)[Par.Pos - 1];
          if (IsLoop && St.K != SpmdStmt::Kind::For)
            return false;
          F.List = &St.Body;
          if (IsLoop)
            F.LoopStmt = &St;
        }
        if (Pos > F.List->size())
          return false;
        F.Pos = static_cast<unsigned>(Pos);
        F.LoopCur = LoopCur;
        F.LoopHi = LoopHi;
        PS.Stack.push_back(F);
      }
      PS.Finished = Rd.u8() != 0;
      PS.Steps = Rd.u64();
      uint64_t NStore = Rd.u64();
      if (!Rd.ok() || NStore > Rd.remaining() / 20)
        return false;
      for (uint64_t K = 0; K != NStore; ++K) {
        unsigned ArrayId = Rd.u32();
        IntT Flat = Rd.i64();
        double Val = Rd.f64();
        PS.Store.emplace(std::make_pair(ArrayId, Flat), Val);
      }
      PS.LastMulticastComm = static_cast<int>(Rd.i64());
      uint64_t NBurst = Rd.u64();
      if (!Rd.ok() || NBurst > Rd.remaining() / 4)
        return false;
      for (uint64_t K = 0; K != NBurst; ++K)
        PS.BurstPhys.insert(Rd.u32());
      PS.BurstReady = Rd.f64();
      PS.CachedPackComm = static_cast<int>(Rd.i64());
      if (!readF64Vec(Rd, PS.CachedData))
        return false;
      PS.CachedCount = Rd.u64();
      if (!Rd.ok())
        return false;
    }

    uint64_t NQueues = Rd.u64();
    if (!Rd.ok() || NQueues > Rd.remaining() / 16)
      return false;
    for (uint64_t K = 0; K != NQueues; ++K) {
      std::vector<IntT> Key;
      if (!readI64Vec(Rd, Key))
        return false;
      uint64_t NMsgs = Rd.u64();
      if (!Rd.ok() || NMsgs > Rd.remaining() / 26)
        return false;
      std::vector<Message> Q(NMsgs);
      for (Message &M : Q) {
        if (!readF64Vec(Rd, M.Data))
          return false;
        M.WordCount = Rd.u64();
        M.ReadyTime = Rd.f64();
        M.FromMulticast = Rd.u8() != 0;
        M.Seq = Rd.u64();
        // Normalized visibility: at a checkpoint line every queued
        // message was pushed in a strictly earlier round, which the
        // wavefront rule reads as always-visible — encoded as sender 0,
        // round 0.
        M.SenderId = 0;
        M.PushRound = 0;
      }
      Img->Queues.emplace(std::move(Key), std::move(Q));
    }
    auto ReadSeqMap = [&](std::map<std::vector<IntT>, uint64_t> &M) {
      uint64_t N = Rd.u64();
      if (!Rd.ok() || N > Rd.remaining() / 16)
        return false;
      for (uint64_t K = 0; K != N; ++K) {
        std::vector<IntT> Key;
        if (!readI64Vec(Rd, Key))
          return false;
        M.emplace(std::move(Key), Rd.u64());
      }
      return Rd.ok();
    };
    if (!ReadSeqMap(Img->SendSeq) || !ReadSeqMap(Img->RecvSeq))
      return false;
    if (!Rd.atEnd())
      return false;

    // Everything validated: apply. Live processor state first.
    for (unsigned I = 0, E = static_cast<unsigned>(Procs.size()); I != E;
         ++I) {
      VirtProc &V = Procs[I];
      const Checkpoint::ProcState &PS = Img->Procs[I];
      V.Env = PS.Env;
      V.ProgEnv = PS.ProgEnv;
      V.Stack = PS.Stack;
      V.Finished = PS.Finished;
      V.Steps = PS.Steps;
      V.Store = PS.Store;
      V.LastMulticastComm = PS.LastMulticastComm;
      V.BurstPhys = PS.BurstPhys;
      V.BurstReady = PS.BurstReady;
      V.CachedPackComm = PS.CachedPackComm;
      V.CachedData = PS.CachedData;
      V.CachedCount = PS.CachedCount;
      V.Crashed = false; // checkpoints are never taken with dead procs
      V.Blocked = false;
    }
    Queues = Img->Queues;
    SendSeq = Img->SendSeq;
    RecvSeq = Img->RecvSeq;
    Failures = Fails;
    Ctr = C;
    Events = ImgEvents;
    PhysClock = Clock;
    PhysBusy = Busy;
    BusyCompute = BCompute;
    BusyProtocol = BProtocol;
    BusyCheckpoint = BCheckpoint;
    NetFree = NFree;
    NetDeferred = NDeferred;
    NetExposed = NExposed;
    RecoveryExtraSeconds = RecoveryExtra;
    HasCrashed = Crashed;
    CrashLog = Log;
    R.Recovery.CheckpointsTaken = CkTaken;
    R.Recovery.CheckpointBytes = CkBytes;
    R.Recovery.Rollbacks = Rollbacks;
    R.Recovery.ReplayedSteps = ReplayedSteps;
    R.Recovery.ReplayedMessages = ReplayedMessages;

    // Rebuild the in-memory stable store from the image so the next
    // in-simulation rollback has its line, exactly as the uninterrupted
    // run would.
    Img->SendSeq = SendSeq;
    Img->RecvSeq = RecvSeq;
    Img->Failures = Failures;
    Img->Messages = Ctr.Messages;
    Img->IntraMessages = Ctr.IntraMessages;
    Img->Words = Ctr.Words;
    Img->Flops = Ctr.Flops;
    Img->ComputeIterations = Ctr.ComputeIterations;
    Img->BusyCompute = BusyCompute;
    Img->BusyProtocol = BusyProtocol;
    Img->BusyCheckpoint = BusyCheckpoint;
    Img->EventsAtTaken = Events;
    Img->WordsPerPhys = Wpp;
    Stable = std::move(Img);
    NextCheckpointEvents = addSat(Events, Opts.Checkpoint.IntervalSteps);
    ReplayBaseEvents = Events;
    return true;
  };

  // Newest first; skip (and count) anything torn, bit-damaged or
  // incompatible. First intact image wins.
  for (auto It = Files.rbegin(); It != Files.rend(); ++It) {
    std::string Path = Dir + "/" + *It;
    stable::ReadFramesResult RF = stable::readFrames(Path);
    if (!RF.Error.empty() || RF.TornTail || RF.Frames.size() != 1 ||
        RF.Frames[0].Type != CkptFrameType || !TryLoad(RF.Frames[0].Payload)) {
      ++ResumeInfo.CorruptSkipped;
      continue;
    }
    ResumeInfo.Resumed = true;
    ResumeInfo.ResumedAtEvents = Events;
    ResumeInfo.File = Path;
    return true;
  }
  return false;
}

namespace {

std::string coordStr(const std::vector<IntT> &C) {
  std::string S = "(";
  for (unsigned I = 0; I != C.size(); ++I) {
    if (I)
      S += ",";
    S += std::to_string(C[I]);
  }
  S += ")";
  return S;
}

} // namespace

std::string SimDiagnostics::str() const {
  constexpr unsigned MaxListed = 16;
  std::string S;
  if (!DeadProcs.empty()) {
    S += "crash-stop failure: " + std::to_string(DeadProcs.size()) +
         " of " + std::to_string(TotalProcs) +
         " virtual processors dead\n";
    for (unsigned I = 0; I != DeadProcs.size() && I != MaxListed; ++I) {
      const CrashEvent &C = DeadProcs[I];
      S += "  dead: vp" + coordStr(C.Coord) + " on phys " +
           std::to_string(C.Phys) + ", killed before its logical step " +
           std::to_string(C.AtStep) + "\n";
    }
    if (DeadProcs.size() > MaxListed)
      S += "  ... and " + std::to_string(DeadProcs.size() - MaxListed) +
           " more dead processors\n";
    if (!RecoveryEnabled)
      S += "  rollback line: none (checkpointing disabled — set "
           "SimOptions::Checkpoint / --checkpoint-interval to recover)\n";
    else if (!HasRollbackLine)
      S += "  rollback line: none (no checkpoint taken yet)\n";
    else
      S += "  rollback line: global step " +
           std::to_string(RollbackLineStep) + ", " +
           std::to_string(RollbacksDone) +
           " rollback(s) performed (rollback budget exhausted)\n";
  }
  S += "deadlock: " + std::to_string(StuckProcs.size()) + " of " +
       std::to_string(TotalProcs) +
       " virtual processors blocked on a receive with no "
       "deliverable message (" +
       std::to_string(FinishedProcs) + " finished)\n";
  for (unsigned I = 0; I != StuckProcs.size() && I != MaxListed; ++I) {
    const PendingRecv &Pr = StuckProcs[I];
    S += "  stuck: vp" + coordStr(Pr.Coord) + " on phys " +
         std::to_string(Pr.Phys) + ", waiting for comm " +
         std::to_string(Pr.CommId) + " from vp" + coordStr(Pr.Peer) +
         ", expecting seq " + std::to_string(Pr.ExpectedSeq);
    if (Pr.PeerDead)
      S += " (peer crashed)";
    if (Pr.BufferedAhead)
      S += ", " + std::to_string(Pr.BufferedAhead) +
           " buffered out of order";
    S += "\n";
  }
  if (StuckProcs.size() > MaxListed)
    S += "  ... and " + std::to_string(StuckProcs.size() - MaxListed) +
         " more stuck processors\n";
  S += "  in-flight message copies: " + std::to_string(InFlightMessages) +
       "\n";
  for (unsigned I = 0; I != RetryExhausted.size() && I != MaxListed;
       ++I) {
    const TransportFailure &F = RetryExhausted[I];
    S += "  retry exhausted: comm " + std::to_string(F.CommId) + " vp" +
         coordStr(F.Src) + " -> vp" + coordStr(F.Dst) + " seq " +
         std::to_string(F.Seq) + " lost after " +
         std::to_string(F.Attempts) + " attempts\n";
  }
  if (RetryExhausted.size() > MaxListed)
    S += "  ... and " +
         std::to_string(RetryExhausted.size() - MaxListed) +
         " more retry-exhausted packets\n";
  return S;
}

void Simulator::reportStall(SimResult &R) const {
  R.Ok = false;
  SimDiagnostics &D = R.Diag;
  D.TotalProcs = Procs.size();
  D.RecoveryEnabled = Opts.Checkpoint.enabled();
  D.HasRollbackLine = Stable != nullptr;
  if (Stable)
    D.RollbackLineStep = Stable->EventsAtTaken;
  D.RollbacksDone = static_cast<unsigned>(R.Recovery.Rollbacks);
  std::set<std::vector<IntT>> Dead;
  for (const VirtProc &V : Procs) {
    if (!V.Crashed)
      continue;
    Dead.insert(V.Coord);
    // The newest crash of this processor (there is at most one per
    // incarnation, and earlier ones were rolled back).
    for (auto It = CrashLog.rbegin(); It != CrashLog.rend(); ++It)
      if (It->Coord == V.Coord) {
        D.DeadProcs.push_back(*It);
        break;
      }
  }
  for (const VirtProc &V : Procs) {
    if (V.Crashed)
      continue;
    if (V.Finished) {
      ++D.FinishedProcs;
      continue;
    }
    if (V.Blocked) {
      PendingRecv Pr = V.LastBlock;
      Pr.PeerDead = Dead.count(Pr.Peer) != 0;
      D.StuckProcs.push_back(Pr);
    }
  }
  D.RetryExhausted = Failures;
  for (const auto &[Key, Q] : Queues)
    D.InFlightMessages += Q.size();
  R.Error = D.str();
}

std::optional<double> Simulator::finalValue(
    unsigned ArrayId, const std::vector<IntT> &Idx) const {
  auto It = Spec.FinalData.find(ArrayId);
  IntT Flat = flatIndex(ArrayId, Idx);
  if (It != Spec.FinalData.end() && It->second.isUnique()) {
    const Decomposition &D = It->second;
    std::vector<IntT> Src(D.sourceSpace().size(), 0);
    unsigned K = 0;
    for (unsigned I = 0; I != D.sourceSpace().size(); ++I) {
      if (D.sourceSpace().kind(I) == VarKind::Param)
        Src[I] = paramValue(Opts.ParamValues, D.sourceSpace().name(I));
      else
        Src[I] = Idx[K++];
    }
    std::vector<IntT> Owner = D.gridCoordinate(Src);
    for (const VirtProc &V : Procs) {
      if (V.Coord != Owner)
        continue;
      auto SIt = V.Store.find({ArrayId, Flat});
      if (SIt == V.Store.end())
        return std::nullopt;
      return SIt->second;
    }
    return std::nullopt;
  }
  return std::nullopt;
}
