//===- sim/Score.h - Batch candidate-spec scoring ---------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch scoring of candidate compile specs: compile each candidate and
/// simulate it once in performance mode (symbolic arithmetic, collapsed
/// compute loops), returning the predicted makespan and communication
/// volume. This is the cost model behind the decomposition auto-search
/// (decomp/Search.h): the paper picks decompositions by inspection; the
/// search replays that judgement mechanically, and the score is what it
/// ranks by.
///
/// Scoring reuses the fleet's supervision machinery (sim/Fleet.h): every
/// candidate compiles and simulates in its own forked child under a
/// wall-clock watchdog, so one pathological candidate (a compile blowup,
/// a simulated deadlock, even a crash) costs one slot of the pool and a
/// timeout — never the whole search. Candidates are deterministically
/// sharded across the pool exactly like fleet scenarios, so reruns score
/// in the same order.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_SIM_SCORE_H
#define DMCC_SIM_SCORE_H

#include "sim/Simulator.h"

#include <string>
#include <vector>

namespace dmcc {

/// Tuning for one batch-scoring run.
struct ScoreOptions {
  IntT Procs = 4; ///< physical processors (1-D grid)
  /// Concrete parameter bindings; every program parameter needs one.
  std::map<std::string, IntT> Params;
  /// Base compiler configuration shared by every candidate.
  CompilerOptions Compile;
  unsigned Jobs = 4;           ///< concurrent scoring children
  double TimeoutSeconds = 60;  ///< per-candidate watchdog deadline
  unsigned MaxRetries = 1;     ///< respawns after a timeout/crash
  double RetryBackoffSeconds = 0.05; ///< first respawn delay; doubles
  SimEngine Engine = SimEngine::Rounds;
};

/// What one candidate cost. Infeasible candidates (spec rejected by the
/// compiler, simulated deadlock, watchdog timeout, worker crash) come
/// back with Ok == false and the reason in Error — never an exception,
/// so a search can simply skip them.
struct SpecScore {
  bool Ok = false;
  std::string Error;
  double MakespanSeconds = 0; ///< the ranking key
  uint64_t Messages = 0;
  uint64_t Words = 0;
  double CompileSeconds = 0;
  unsigned CommSets = 0; ///< communication sets after self-reuse
  unsigned Attempts = 0; ///< scoring children spawned (1 = clean)
};

/// Scores every candidate spec against \p P; result i corresponds to
/// Specs[i]. The caller must not hold live threads (the scorer forks).
std::vector<SpecScore> scoreSpecs(const Program &P,
                                  const std::vector<CompileSpec> &Specs,
                                  const ScoreOptions &SO);

} // namespace dmcc

#endif // DMCC_SIM_SCORE_H
