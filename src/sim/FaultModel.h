//===- sim/FaultModel.h - Deterministic network fault injection -*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-driven fault injection for the simulated message-passing machine.
/// Every decision (drop this data packet? drop its ack? duplicate it? how
/// much extra wire delay?) is a pure function of the seed and the packet's
/// identity (channel, sequence number, attempt), never of the scheduler's
/// interleaving — so a given seed produces exactly one fault schedule and
/// simulation results are bit-for-bit reproducible. The same purity makes
/// FaultModel thread-safe: after construction every method is const over
/// immutable members, so the threaded simulator engine (DESIGN.md §10)
/// queries one shared instance from all workers without locks.
///
/// The fault model drives the reliable-transport layer in the simulator:
/// with any fault knob nonzero, sends carry sequence numbers, receivers
/// acknowledge and suppress duplicates, and senders retransmit with
/// exponential backoff up to a bounded retry budget. With all knobs at
/// their defaults the transport is bypassed entirely (zero overhead).
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_SIM_FAULTMODEL_H
#define DMCC_SIM_FAULTMODEL_H

#include "support/IntOps.h"

#include <cstdint>
#include <vector>

namespace dmcc {

/// Network/processor fault-injection knobs plus the reliable-transport
/// parameters that tolerate them. All rates are probabilities in [0, 1].
struct FaultOptions {
  uint64_t Seed = 0;          ///< fault-schedule seed
  double DropRate = 0;        ///< P(one data or ack transmission is lost)
  double DupRate = 0;         ///< P(a delivered data packet is duplicated)
  double MaxDelaySeconds = 0; ///< extra delivery delay, uniform in [0, max]
  /// Compute slowdown per physical processor, drawn uniformly in
  /// [1, MaxSlowdown]; 1 disables the fault.
  double MaxSlowdown = 1.0;

  /// Crash-stop schedule: P(a virtual processor dies immediately before
  /// executing one of its logical steps). A dead processor executes
  /// nothing further and its volatile state is lost; recovery needs the
  /// simulator's checkpoint/restart layer (SimOptions::Checkpoint).
  double CrashRate = 0;
  /// Seed of the crash-stop schedule, independent of the network-fault
  /// seed so crash placement can be swept with the packet faults fixed.
  uint64_t CrashSeed = 0;

  /// P(a delivered data copy arrives with a corrupted payload). Every
  /// packet is checksummed at the receiver; a failed checksum is
  /// discarded and a NACK returns to the sender, which retransmits on
  /// its next attempt instead of waiting out the full ack timeout.
  double CorruptRate = 0;
  /// P(a packet's first transmissions fall inside a transient network
  /// partition). While partitioned, the link blackholes both data and
  /// acks; the partition heals after a seeded number of attempts in
  /// [1, PartitionMaxOutage], so the sender's backoff eventually spans
  /// it — unless the outage exceeds the retry budget, which surfaces as
  /// a structured retry-exhaustion diagnostic.
  double PartitionRate = 0;
  /// Longest partition outage, in blackholed transmission attempts.
  unsigned PartitionMaxOutage = 3;
  /// P(a directed physical link is a straggler). Affected links carry a
  /// per-link latency multiplier drawn uniformly in
  /// [1, SlowLinkMaxFactor]; values and counters are untouched — only
  /// delivery clocks stretch.
  double SlowLinkRate = 0;
  double SlowLinkMaxFactor = 4.0;

  /// Reliable-transport tuning: time the sender waits for an ack before
  /// the first retransmission; doubles (BackoffFactor) per retry.
  double RetryTimeoutSeconds = 500e-6;
  double BackoffFactor = 2.0;
  /// Retransmissions after the initial attempt before giving up on a
  /// packet and reporting a transport failure.
  unsigned MaxRetries = 8;
  /// Engage the reliable transport (seq numbers, acks) even with all
  /// fault rates at zero, to measure the protocol's own overhead.
  bool AlwaysReliable = false;

  /// True if slow-link injection can actually stretch a delivery.
  bool slowLinks() const {
    return SlowLinkRate > 0 && SlowLinkMaxFactor > 1.0;
  }
  /// True if any fault can actually occur.
  bool faulty() const {
    return DropRate > 0 || DupRate > 0 || MaxDelaySeconds > 0 ||
           MaxSlowdown > 1.0 || CrashRate > 0 || CorruptRate > 0 ||
           PartitionRate > 0 || slowLinks();
  }
  /// True if the simulator must route messages through the reliable
  /// transport instead of the ideal zero-overhead network. A pure
  /// compute slowdown does not need acknowledged delivery, and neither
  /// does a slow link (delivery is late, not lost); crash-stop recovery
  /// does — the per-channel sequence numbers define the rollback line
  /// and absorb messages resent during replay — as do corruption (the
  /// NACK/retransmit cycle IS the transport) and partitions (healing is
  /// observed through retries).
  bool transportActive() const {
    return DropRate > 0 || DupRate > 0 || MaxDelaySeconds > 0 ||
           CrashRate > 0 || CorruptRate > 0 || PartitionRate > 0 ||
           AlwaysReliable;
  }
};

/// The deterministic fault schedule. Stateless apart from the options:
/// every query hashes its arguments with the seed, so results do not
/// depend on query order.
class FaultModel {
public:
  explicit FaultModel(const FaultOptions &O) : Opt(O) {}

  const FaultOptions &options() const { return Opt; }
  bool active() const { return Opt.transportActive(); }

  /// Stable identity of a directed channel: communication tag plus the
  /// sender and receiver virtual-grid coordinates.
  static uint64_t channelId(unsigned CommId, const std::vector<IntT> &Src,
                            const std::vector<IntT> &Dst);

  /// Is the data transmission of attempt \p Attempt of packet \p Seq lost?
  bool dropData(uint64_t Chan, uint64_t Seq, unsigned Attempt) const;
  /// Is the acknowledgement for that attempt lost on the way back?
  bool dropAck(uint64_t Chan, uint64_t Seq, unsigned Attempt) const;
  /// Does the network deliver an extra copy of that attempt?
  bool duplicate(uint64_t Chan, uint64_t Seq, unsigned Attempt) const;
  /// Extra wire delay for copy \p Copy of that attempt, in
  /// [0, MaxDelaySeconds]. Independent per copy, so duplicates and
  /// retransmissions can arrive out of order.
  double deliveryDelay(uint64_t Chan, uint64_t Seq, unsigned Attempt,
                       unsigned Copy) const;
  /// Compute-slowdown factor of physical processor \p Phys, in
  /// [1, MaxSlowdown].
  double slowdown(unsigned Phys) const;
  /// Sender-side wait before retransmission attempt \p Attempt (>= 1):
  /// RetryTimeoutSeconds * BackoffFactor^(Attempt - 1).
  double backoffDelay(unsigned Attempt) const;

  /// Does the data payload of attempt \p Attempt of packet \p Seq arrive
  /// corrupted (checksum failure at the receiver, triggering a NACK)?
  bool corruptData(uint64_t Chan, uint64_t Seq, unsigned Attempt) const;
  /// Transient-partition outage for packet \p Seq: the number of initial
  /// transmission attempts the link blackholes before the partition
  /// heals (0 = the packet is never caught in a partition). Pure in
  /// (Seed, Chan, Seq), so healing is bit-for-bit reproducible.
  unsigned partitionOutage(uint64_t Chan, uint64_t Seq) const;
  /// Is attempt \p Attempt of packet \p Seq swallowed by a transient
  /// partition (both the data and any ack are lost)?
  bool partitioned(uint64_t Chan, uint64_t Seq, unsigned Attempt) const {
    return Attempt < partitionOutage(Chan, Seq);
  }
  /// Straggler-link latency multiplier of the directed physical link
  /// \p SrcPhys -> \p DstPhys, in [1, SlowLinkMaxFactor]. Exactly 1 for
  /// self-links and for links the seeded schedule leaves healthy.
  double linkFactor(unsigned SrcPhys, unsigned DstPhys) const;

  /// Does virtual processor \p Vp die immediately before executing its
  /// logical step \p Step? Pure in (CrashSeed, Vp, Step), so a crash
  /// schedule is bit-for-bit reproducible and independent of scheduler
  /// interleaving. The simulator honors only the first hit per
  /// processor: a restarted incarnation is assumed reliable, bounding
  /// the number of rollbacks by the processor count.
  bool crashAt(unsigned Vp, uint64_t Step) const;

private:
  /// Uniform value in [0, 1) from \p SeedV and a 4-part identity.
  double unitWith(uint64_t SeedV, uint64_t A, uint64_t B, uint64_t C,
                  uint64_t D) const;
  /// Uniform value in [0, 1) from the fault seed and a 4-part identity.
  double unit(uint64_t A, uint64_t B, uint64_t C, uint64_t D) const;

  FaultOptions Opt;
};

} // namespace dmcc

#endif // DMCC_SIM_FAULTMODEL_H
