//===- sim/Simulator.h - Distributed-memory machine simulator --*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a compiled SPMD program on a simulated message-passing
/// machine, standing in for the paper's Intel iPSC/860. Every *virtual*
/// processor of the compilation grid runs the SPMD program with its own
/// environment and private local memory; virtual processors are folded
/// onto physical processors round-robin (pi(v) = v mod P, Section 4.1)
/// and multiplexed cooperatively on a shared per-physical clock.
///
/// Locality is enforced by construction: a processor can only read array
/// elements it owns initially, wrote itself, or received — any other read
/// is reported as a compilation bug. Functional mode computes real
/// floating-point values (verified against the sequential interpreter);
/// performance mode skips the arithmetic, collapses communication-free
/// innermost loops into closed-form costs, and reproduces Figure 14 at
/// full problem sizes.
///
/// An optional fault layer (SimOptions::Faults, see FaultModel.h) makes
/// the network lossy — dropped, duplicated, delayed and corrupted
/// packets (checksummed delivery with NACK-triggered retransmission),
/// transient partitions that heal after a seeded interval, straggler
/// links with per-link latency multipliers, slow processors — and runs
/// every channel over an acked stop-and-wait transport with bounded
/// retransmission. Results remain bit-exact under
/// any fault schedule; unrecoverable stalls end in a structured
/// SimDiagnostics instead of a hang. With the default options the layer
/// is bypassed and costs match the lossless machine exactly.
///
/// On top of the lossy network the fault layer supports permanent
/// crash-stop processor failures (FaultOptions::CrashRate) tolerated by
/// a coordinated checkpoint/restart protocol (SimOptions::Checkpoint):
/// at a configurable logical-step interval every virtual processor
/// snapshots its partitions, cursors, receive buffers and transport
/// sequence state to an in-simulator stable store; when a crash stalls
/// the machine, all processors roll back to the last checkpoint and
/// replay, the transport's duplicate suppression absorbing messages
/// resent from before the rollback line (DESIGN.md §8). Results remain
/// bit-exact under every recoverable crash schedule.
///
/// SimOptions::Threads > 1 executes the physical processors on real OS
/// threads (DESIGN.md §10): rounds become barrier-synchronized epochs,
/// channels become mutex-guarded queues, and a wavefront rule
/// reproduces the sequential engine's intra-round message visibility,
/// so every result — values, costs, diagnostics, recovery telemetry —
/// is bit-identical to the sequential engine for every seed.
///
/// SimOptions::Engine == SimEngine::Event replaces the per-round sweep
/// over every virtual processor with a discrete-event scheduler
/// (DESIGN.md §14): only runnable processors are visited, a blocked
/// receiver parks in a per-(dest, tag) hash bucket and is woken in O(1)
/// by the send that can satisfy it, and checkpoint barriers are
/// amortized by cutting the round at the first gated slice instead of
/// sweeping the remaining processors through no-op slices. Because a
/// blocked receive attempt is side-effect-free, skipping it preserves
/// the exact sequential statement order — the event engine is
/// bit-identical to the round engines for every program, fault, crash
/// and checkpoint schedule, at a fraction of the scheduling cost when
/// most processors are waiting (the regime at P >= 1024).
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_SIM_SIMULATOR_H
#define DMCC_SIM_SIMULATOR_H

#include "core/Compiler.h"
#include "ir/Program.h"
#include "sim/FaultModel.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dmcc {

/// Message-passing cost parameters, defaulting to iPSC/860-class
/// constants (hypercube with ~8 single-precision MFLOPS/node achieved,
/// ~75 us message latency, ~2.8 MB/s per link).
struct CostModel {
  double FlopTime = 1.0 / 8.0e6;  ///< seconds per floating-point op
  double IterOverhead = 0.02e-6;  ///< per executed loop iteration
  double MsgLatency = 75e-6;      ///< fixed per-message cost (alpha)
  double SendPerWord = 0.35e-6;   ///< per 4-byte word at the sender
  double RecvPerWord = 0.35e-6;   ///< per word copy at the receiver
  double WireTimePerWord = 1.4e-6;///< link occupancy per word
  double MulticastExtraDest = 10e-6; ///< extra per additional destination
  /// CPU-side cost to post a nonblocking (early) send: the descriptor
  /// write that hands the message to the NIC. The per-word pack copy is
  /// still charged to the CPU; the fixed MsgLatency (and, under the
  /// reliable transport, the retransmission work) moves to the NIC and
  /// overlaps the sender's remaining computation. On the fault-free
  /// path the NIC cuts through: protocol processing pipelines into the
  /// flight, so consumers see a single MsgLatency instead of the
  /// blocking rendezvous' two (DESIGN.md §11).
  double SendIssueOverhead = 5e-6;
};

/// Coordinated checkpoint/restart configuration (DESIGN.md §8). With
/// IntervalSteps == 0 the layer is disabled entirely: no snapshots are
/// taken and a crash-stop failure is unrecoverable.
struct CheckpointOptions {
  /// Global logical-step (executed SPMD statement) interval between
  /// coordinated checkpoints; 0 disables checkpointing and recovery.
  /// An initial cost-free checkpoint of the starting state is always
  /// taken when enabled, so a rollback line exists from step 0.
  uint64_t IntervalSteps = 0;
  /// Stable-store write cost per checkpoint per processor: fixed
  /// latency plus a per-word charge for the snapshotted state.
  double LatencySeconds = 1e-3;
  double PerWordSeconds = 1e-6;
  /// Stable-store read cost on rollback, same shape.
  double RestoreLatencySeconds = 1e-3;
  double RestorePerWordSeconds = 1e-6;
  /// Stall-to-detection window charged once per rollback: the time the
  /// survivors take to agree a peer is dead rather than slow.
  double DetectSeconds = 5e-3;
  /// Rollback budget: recovery attempts beyond this end the run with a
  /// structured diagnostic instead of thrashing. Crash schedules honor
  /// at most one crash per processor, so this is a secondary guard.
  unsigned MaxRollbacks = 64;
  /// Durable stable store (DESIGN.md §13). When non-empty, every
  /// coordinated checkpoint (including the free initial one) is also
  /// serialized to `DurableDir/ckpt-<events>.dmc` as a versioned,
  /// CRC32-framed image written with temp+fsync+rename — so a SIGKILL
  /// of the host process at any instant leaves the newest intact image
  /// on disk. Requires IntervalSteps > 0.
  std::string DurableDir;
  /// Before executing anything, scan DurableDir for the newest intact
  /// checkpoint image (torn or bit-damaged files are detected by the
  /// frame CRCs and skipped), restore the full machine state from it
  /// and replay from there — bit-identical to the uninterrupted run.
  /// With no usable image the run starts fresh, so a kill/restart loop
  /// can pass Resume unconditionally. See Simulator::resumeInfo().
  bool Resume = false;

  bool enabled() const { return IntervalSteps > 0; }
  bool durable() const { return enabled() && !DurableDir.empty(); }
};

/// Which scheduler drives the virtual processors (SimOptions::Engine).
enum class SimEngine {
  /// Global rounds: the sequential sweep (Threads == 1) or the
  /// barrier-synchronized thread pool (Threads > 1).
  Rounds,
  /// Discrete-event virtual-clock queue (DESIGN.md §14): processors are
  /// scheduled only when runnable, blocked receivers wake in O(1) via
  /// per-channel hash buckets. Single-threaded; Threads must be 1.
  Event,
};

/// Simulation configuration.
struct SimOptions {
  /// Physical processors along each grid dimension.
  std::vector<IntT> PhysGrid;
  std::map<std::string, IntT> ParamValues;
  /// Compute actual values (slow, exact) vs cost accounting only.
  bool Functional = true;
  /// Collapse communication-free innermost loops into closed-form costs
  /// (performance mode only).
  bool CollapseLoops = false;
  /// Do not charge network costs for messages between virtual processors
  /// folded onto the same physical processor (Section 6.1.3).
  bool FreeIntraPhysical = true;
  /// Honor nonblocking marks on Send statements (paper Section 6 "early
  /// sends", DESIGN.md §11): the sender pays only the issue/pack cost,
  /// a per-physical NIC serializes the message out while the processor
  /// keeps computing, and only non-overlapped latency reaches the
  /// makespan (a processor is not finished until its NIC drains). Off
  /// forces every send back to blocking semantics regardless of
  /// compiler marks. Array results are bit-identical either way — only
  /// clocks move.
  bool EarlySends = true;
  CostModel Cost;
  /// Fault injection and reliable transport; defaults to a perfect
  /// network with the transport bypassed (zero overhead).
  FaultOptions Faults;
  /// Coordinated checkpoint/restart; defaults to disabled (zero
  /// overhead, no recovery from crash-stop failures).
  CheckpointOptions Checkpoint;
  uint64_t MaxEvents = 6000000000ull; ///< runaway guard
  /// Worker threads executing the physical processors (DESIGN.md §10).
  /// 1 (the default) is the sequential engine, byte-for-byte today's
  /// behavior; N > 1 runs physical processors on real OS threads
  /// (clamped to the physical processor count) with results bit-identical
  /// to the sequential engine for every program, cost model, fault and
  /// crash schedule; 0 picks min(hardware concurrency, physical procs).
  unsigned Threads = 1;
  /// Scheduler choice (DESIGN.md §14). SimEngine::Event is
  /// single-threaded by design; combining it with Threads != 1 is a
  /// configuration error (run() aborts, dmcc-cli rejects it as a usage
  /// error). Results are bit-identical across engines.
  SimEngine Engine = SimEngine::Rounds;
};

/// Logical counters accumulated during execution. The sequential engine
/// bumps the run-wide instance directly; the threaded engine gives each
/// worker a private instance and merges at the round barrier — integer
/// sums commute, so the totals are bit-identical either way. The first
/// group rewinds with a rollback (checkpoint state); the second group
/// plus Crashes is monotonic wire-level/telemetry truth.
struct SimCounters {
  uint64_t Messages = 0, IntraMessages = 0, Words = 0, Flops = 0,
           ComputeIterations = 0;
  uint64_t Retransmissions = 0, DroppedPackets = 0,
           DuplicatesSuppressed = 0, AcksSent = 0;
  /// Hostile-network telemetry, monotonic like the transport counters:
  /// checksum failures NACKed back to the sender, NACK transmissions,
  /// attempts swallowed by a transient partition, and logical messages
  /// that crossed a straggler (latency-multiplied) link.
  uint64_t CorruptedPackets = 0, NacksSent = 0, PartitionDrops = 0,
           SlowLinkMessages = 0;
  uint64_t Crashes = 0; ///< crash-stop kills (survive rollback)
  /// Nonblocking sends issued. Monotonic wire-level telemetry like
  /// Retransmissions: replayed issues after a rollback count again.
  uint64_t EarlySends = 0;

  void add(const SimCounters &O) {
    Messages += O.Messages;
    IntraMessages += O.IntraMessages;
    Words += O.Words;
    Flops += O.Flops;
    ComputeIterations += O.ComputeIterations;
    Retransmissions += O.Retransmissions;
    DroppedPackets += O.DroppedPackets;
    DuplicatesSuppressed += O.DuplicatesSuppressed;
    AcksSent += O.AcksSent;
    CorruptedPackets += O.CorruptedPackets;
    NacksSent += O.NacksSent;
    PartitionDrops += O.PartitionDrops;
    SlowLinkMessages += O.SlowLinkMessages;
    Crashes += O.Crashes;
    EarlySends += O.EarlySends;
  }
};

/// One virtual processor stuck on a receive when the deadlock detector
/// gave up: where it is, and exactly what it is waiting for.
struct PendingRecv {
  std::vector<IntT> Coord; ///< receiver virtual-grid coordinate
  unsigned Phys = 0;       ///< physical processor it is folded onto
  unsigned CommId = 0;     ///< communication-set tag of the receive
  std::vector<IntT> Peer;  ///< expected sender virtual coordinate
  uint64_t ExpectedSeq = 0; ///< next sequence number awaited
  /// Copies queued on the channel with a different (later) sequence
  /// number — arrived out of order, unusable until ExpectedSeq shows up.
  uint64_t BufferedAhead = 0;
  /// The awaited sender was killed by the crash-stop schedule: this
  /// message can never arrive without a rollback.
  bool PeerDead = false;
};

/// A virtual processor killed by the crash-stop schedule.
struct CrashEvent {
  std::vector<IntT> Coord; ///< virtual-grid coordinate of the victim
  unsigned Phys = 0;       ///< physical processor it was folded onto
  uint64_t AtStep = 0;     ///< its logical step (executed stmts) at death
  double AtTime = 0;       ///< its physical clock at death
};

/// A packet the reliable transport gave up on: every attempt (initial
/// send plus MaxRetries retransmissions) was lost in flight.
struct TransportFailure {
  unsigned CommId = 0;
  std::vector<IntT> Src, Dst; ///< sender / receiver virtual coordinates
  uint64_t Seq = 0;
  unsigned Attempts = 0; ///< transmissions made before giving up
};

/// Structured failure report built when a run cannot complete, instead
/// of a bare error string: which processors are stuck, what they wait
/// for, what the transport already gave up on.
struct SimDiagnostics {
  std::vector<PendingRecv> StuckProcs;
  std::vector<TransportFailure> RetryExhausted;
  /// Processors dead (crashed and not recovered) when the run ended.
  std::vector<CrashEvent> DeadProcs;
  /// Whether checkpoint/restart was configured, and where the last
  /// rollback line was (global logical step of the newest checkpoint;
  /// meaningful only when HasRollbackLine).
  bool RecoveryEnabled = false;
  bool HasRollbackLine = false;
  uint64_t RollbackLineStep = 0;
  unsigned RollbacksDone = 0; ///< recoveries performed before giving up
  uint64_t InFlightMessages = 0; ///< undelivered copies across channels
  uint64_t FinishedProcs = 0, TotalProcs = 0;

  /// Human-readable rendering ("deadlock: ... vp(1,2) waiting ...").
  std::string str() const;
};

/// Crash/checkpoint/recovery telemetry (DESIGN.md §8). All fields stay
/// zero while crash-stop failures and checkpointing are disabled.
struct RecoveryStats {
  uint64_t CheckpointsTaken = 0; ///< coordinated snapshots, incl. initial
  uint64_t CheckpointBytes = 0;  ///< bytes written to the stable store
  uint64_t Crashes = 0;          ///< processors killed by the schedule
  uint64_t Rollbacks = 0;        ///< coordinated restarts performed
  uint64_t ReplayedSteps = 0;    ///< statements rolled back for re-execution
  uint64_t ReplayedMessages = 0; ///< logical messages rolled back / resent
  /// Wall-model busy-time split across all physical processors.
  /// Compute/Protocol/Checkpoint charge each useful unit of work once:
  /// work undone by a rollback is moved into RecoverySeconds, which also
  /// carries failure-detection windows and stable-store restore costs.
  double ComputeSeconds = 0;
  double ProtocolSeconds = 0;
  double CheckpointSeconds = 0;
  double RecoverySeconds = 0;
};

/// Communication/computation overlap telemetry for nonblocking (early)
/// sends, aggregated over the run's messages (DESIGN.md §11). All zero
/// when the program carries no nonblocking marks or
/// SimOptions::EarlySends is off. Per-message accounting: each issue
/// adds its share to DeferredSeconds; what the end-of-run NIC drains
/// add back to the clocks lands in ExposedSeconds. Monotonic across
/// rollbacks, like the wire-level transport counters.
struct OverlapStats {
  uint64_t EarlySends = 0;  ///< nonblocking sends issued
  /// Latency taken off the issuing CPU's clock: the blocking charge
  /// minus the nonblocking issue charge, summed per message.
  double DeferredSeconds = 0;
  /// Deferred latency that resurfaced: NIC backlog a processor had to
  /// drain before the run could finish (non-overlapped remainder).
  double ExposedSeconds = 0;
  /// Latency actually hidden behind the sender's computation.
  double hiddenSeconds() const { return DeferredSeconds - ExposedSeconds; }
};

/// Outcome of the durable-resume scan (CheckpointOptions::Resume),
/// reported out of band: it is host-process bookkeeping, not simulated
/// telemetry, so it must not perturb SimResult's bit-identity contract.
struct DurableResumeInfo {
  bool Attempted = false;     ///< a resume scan ran before execution
  bool Resumed = false;       ///< an intact image was restored
  uint64_t ResumedAtEvents = 0; ///< global step of the restored line
  unsigned FilesSeen = 0;     ///< checkpoint images found in the dir
  unsigned CorruptSkipped = 0;///< torn/bit-damaged/incompatible skipped
  std::string File;           ///< path of the image restored
};

/// Aggregate outcome of a simulation.
struct SimResult {
  bool Ok = false;
  std::string Error; ///< rendered diagnostics when !Ok
  SimDiagnostics Diag; ///< structured failure report when !Ok
  double MakespanSeconds = 0;
  uint64_t Messages = 0;       ///< network messages (inter-physical)
  uint64_t IntraMessages = 0;  ///< folded-away intra-physical messages
  uint64_t Words = 0;          ///< words crossing the network
  uint64_t Flops = 0;
  uint64_t ComputeIterations = 0;
  uint64_t TotalEvents = 0;   ///< executed SPMD statements
  std::vector<double> PhysBusy; ///< busy seconds per physical processor

  // Reliable-transport counters (all zero when the transport is
  // bypassed). Messages/Words above stay logical (one per app-level
  // send) so they remain comparable across fault schedules — a rollback
  // rewinds them along with the program state, so a recovered run
  // reports the same logical traffic as a fault-free one. The transport
  // counters below are monotonic: they keep every wire-level event,
  // including those of rolled-back epochs.
  uint64_t Retransmissions = 0;      ///< extra transmissions by senders
  uint64_t DroppedPackets = 0;       ///< data copies lost in flight
  uint64_t DuplicatesSuppressed = 0; ///< redundant copies discarded
  uint64_t AcksSent = 0;             ///< acknowledgements generated
  uint64_t CorruptedPackets = 0;     ///< checksum failures at receivers
  uint64_t NacksSent = 0;            ///< corruption NACKs generated
  uint64_t PartitionDrops = 0;       ///< attempts lost to partitions
  uint64_t SlowLinkMessages = 0;     ///< messages over straggler links

  /// Crash/checkpoint/restart telemetry.
  RecoveryStats Recovery;

  /// Early-send overlap telemetry.
  OverlapStats Overlap;
};

/// The machine simulator.
class Simulator {
public:
  Simulator(const Program &P, const CompiledProgram &CP,
            const CompileSpec &Spec, SimOptions Opts);
  ~Simulator();

  /// Runs to completion (or deadlock). Idempotent state: construct a new
  /// Simulator per run.
  SimResult run();

  /// After a functional run: the value of an array element under the
  /// final data layout (or, absent a final layout, the value held by any
  /// virtual processor that wrote or received it last — for verification
  /// the final layout should be supplied). nullopt if nobody holds it.
  std::optional<double> finalValue(unsigned ArrayId,
                                   const std::vector<IntT> &Idx) const;

  /// Number of virtual processors along each grid dimension.
  const std::vector<IntT> &virtGridLo() const { return VirtLo; }
  const std::vector<IntT> &virtGridHi() const { return VirtHi; }

  /// What the durable-resume scan did (meaningful after run() when
  /// CheckpointOptions::Resume was set).
  const DurableResumeInfo &resumeInfo() const { return ResumeInfo; }

private:
  struct Frame;
  struct VirtProc;
  struct Message;
  struct Checkpoint;
  /// Per-slice execution context: counter sink, exact-events base for
  /// the checkpoint gate, and the threaded engine's wavefront hooks.
  struct StepCtx;
  /// Worker pool, round barrier and wavefront synchronization for the
  /// threaded engine (DESIGN.md §10).
  struct ThreadEngine;
  /// Discrete-event scheduler: run queues, per-channel wait buckets and
  /// the O(1) wake rule (DESIGN.md §14).
  struct EventEngine;
  /// Merged outcome of one scheduler round.
  struct RoundFlags {
    bool Progress = false, AllDone = true, AnyDead = false;
  };

  IntT flatIndex(unsigned ArrayId, const std::vector<IntT> &Idx) const;
  void computeVirtualGrid();
  void initLocalStores();
  bool stepProc(VirtProc &V, StepCtx &Ctx);
  /// One cooperative round of the sequential engine: every live
  /// processor runs one slice, in ascending processor order.
  RoundFlags runRoundSequential();
  void execComputeIter(VirtProc &V, const SpmdStmt &St);
  double statementCost(const Statement &S) const;
  unsigned physOf(const std::vector<IntT> &VirtCoord) const;
  /// Flat Procs index of a virtual-grid coordinate; false when the
  /// coordinate lies outside the instantiated grid.
  bool procIndexOf(const std::vector<IntT> &Coord, unsigned &Out) const;
  /// Statements per processor per round (short when crashes or
  /// checkpoints bound how stale a round boundary may be).
  unsigned sliceBudget() const;
  /// Worker threads the run will actually use (Opts.Threads clamped to
  /// the physical processor count; 0 = hardware concurrency).
  unsigned effectiveWorkers() const;
  /// Copies the canonical counters into the result's fields.
  void flushCounters(SimResult &R) const;
  void reportStall(SimResult &R) const;
  /// Coordinated checkpoint: snapshot all processor, queue, counter and
  /// transport state into the stable store, charging the cost model
  /// (the initial step-0 checkpoint is free — the input staging).
  void takeCheckpoint(SimResult &R, bool Initial);
  /// Coordinated rollback: restore the last checkpoint, reincarnate
  /// dead processors, rewind logical counters, move undone work into
  /// the recovery bucket, and advance the clocks past detection and
  /// stable-store restore costs.
  void restoreCheckpoint(SimResult &R);
  /// Durable stable store (DESIGN.md §13): serialize the machine state
  /// at the checkpoint line just drawn into DurableDir (CRC32-framed,
  /// temp+fsync+rename). Fatal on host I/O failure — a run that cannot
  /// honor its durability contract must not continue silently.
  void persistDurable(const SimResult &R);
  /// Restore the newest intact durable image from DurableDir, skipping
  /// torn/corrupt/incompatible files; returns false (leaving the
  /// freshly-staged state untouched) when none is usable.
  bool resumeFromDurable(SimResult &R);
  /// Sum the per-physical busy buckets into the result's telemetry.
  void fillRecoverySplit(SimResult &R) const;
  /// Sum the per-physical overlap buckets into the result's telemetry
  /// (fixed physical order, so totals are bit-identical across worker
  /// counts).
  void fillOverlap(SimResult &R) const;

  const Program &P;
  const CompiledProgram &CP;
  const CompileSpec &Spec;
  SimOptions Opts;
  FaultModel Faults;

  std::vector<IntT> VirtLo, VirtHi; ///< virtual grid extent per dim
  /// Row-major strides of the virtual grid, for coordinate -> flat
  /// Procs-index mapping (the construction odometer's order).
  std::vector<IntT> VirtStride;
  std::vector<VirtProc> Procs;
  std::map<std::vector<IntT>, std::vector<Message>> Queues;
  /// Reliable transport: next sequence number per directed channel key
  /// (CommId, src coord, dst coord), sender and receiver side.
  std::map<std::vector<IntT>, uint64_t> SendSeq, RecvSeq;
  /// Packets whose retry budget was exhausted (never delivered).
  std::vector<TransportFailure> Failures;
  std::vector<double> PhysClock;
  std::vector<double> PhysBusy;
  std::vector<double> SlowFactor; ///< per-phys compute slowdown (>= 1)
  /// Per-physical busy-time buckets for the recovery telemetry split.
  /// Compute/Protocol/Checkpoint rewind with a rollback (their lost
  /// share moves into the recovery total); RecoveryExtraSeconds is the
  /// global monotonic remainder (detection windows, restore costs,
  /// undone work).
  std::vector<double> BusyCompute, BusyProtocol, BusyCheckpoint;
  double RecoveryExtraSeconds = 0;
  /// Early-send NIC model (DESIGN.md §11), one slot per physical
  /// processor and single-writer under the threaded engine. NetFree is
  /// the time the NIC is next free — clock-like: it never rewinds on a
  /// rollback and is not checkpointed (replayed issues reserve fresh
  /// NIC time, exactly as replayed computes re-charge the clock).
  /// NetDeferred/NetExposed are monotonic overlap telemetry: latency
  /// moved off the CPU at issue, and backlog drained back into the
  /// clock at the end of the run.
  std::vector<double> NetFree, NetDeferred, NetExposed;
  /// Crash-stop bookkeeping that survives rollbacks: which processors
  /// have used their one crash (replay immunity), and every crash seen.
  std::vector<char> HasCrashed;
  std::vector<CrashEvent> CrashLog;
  /// The stable store: the newest coordinated checkpoint, if any.
  std::unique_ptr<Checkpoint> Stable;
  uint64_t NextCheckpointEvents = 0; ///< global-step checkpoint trigger
  /// Global step count at the last checkpoint or rollback, for the
  /// replayed-steps telemetry.
  uint64_t ReplayBaseEvents = 0;
  /// Outcome of the durable-resume scan (resumeInfo()).
  DurableResumeInfo ResumeInfo;
  std::vector<IntT> ParamEnv; ///< parameter values aligned to Spmd space
  uint64_t Events = 0;        ///< executed SPMD statements (budget guard)
  /// Canonical logical counters (see SimCounters); flushCounters copies
  /// them into the SimResult at every exit from run().
  SimCounters Ctr;
};

} // namespace dmcc

#endif // DMCC_SIM_SIMULATOR_H
