//===- sim/Simulator.h - Distributed-memory machine simulator --*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a compiled SPMD program on a simulated message-passing
/// machine, standing in for the paper's Intel iPSC/860. Every *virtual*
/// processor of the compilation grid runs the SPMD program with its own
/// environment and private local memory; virtual processors are folded
/// onto physical processors round-robin (pi(v) = v mod P, Section 4.1)
/// and multiplexed cooperatively on a shared per-physical clock.
///
/// Locality is enforced by construction: a processor can only read array
/// elements it owns initially, wrote itself, or received — any other read
/// is reported as a compilation bug. Functional mode computes real
/// floating-point values (verified against the sequential interpreter);
/// performance mode skips the arithmetic, collapses communication-free
/// innermost loops into closed-form costs, and reproduces Figure 14 at
/// full problem sizes.
///
/// An optional fault layer (SimOptions::Faults, see FaultModel.h) makes
/// the network lossy — dropped, duplicated and delayed packets, slow
/// processors — and runs every channel over an acked stop-and-wait
/// transport with bounded retransmission. Results remain bit-exact under
/// any fault schedule; unrecoverable stalls end in a structured
/// SimDiagnostics instead of a hang. With the default options the layer
/// is bypassed and costs match the lossless machine exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_SIM_SIMULATOR_H
#define DMCC_SIM_SIMULATOR_H

#include "core/Compiler.h"
#include "ir/Program.h"
#include "sim/FaultModel.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dmcc {

/// Message-passing cost parameters, defaulting to iPSC/860-class
/// constants (hypercube with ~8 single-precision MFLOPS/node achieved,
/// ~75 us message latency, ~2.8 MB/s per link).
struct CostModel {
  double FlopTime = 1.0 / 8.0e6;  ///< seconds per floating-point op
  double IterOverhead = 0.02e-6;  ///< per executed loop iteration
  double MsgLatency = 75e-6;      ///< fixed per-message cost (alpha)
  double SendPerWord = 0.35e-6;   ///< per 4-byte word at the sender
  double RecvPerWord = 0.35e-6;   ///< per word copy at the receiver
  double WireTimePerWord = 1.4e-6;///< link occupancy per word
  double MulticastExtraDest = 10e-6; ///< extra per additional destination
};

/// Simulation configuration.
struct SimOptions {
  /// Physical processors along each grid dimension.
  std::vector<IntT> PhysGrid;
  std::map<std::string, IntT> ParamValues;
  /// Compute actual values (slow, exact) vs cost accounting only.
  bool Functional = true;
  /// Collapse communication-free innermost loops into closed-form costs
  /// (performance mode only).
  bool CollapseLoops = false;
  /// Do not charge network costs for messages between virtual processors
  /// folded onto the same physical processor (Section 6.1.3).
  bool FreeIntraPhysical = true;
  CostModel Cost;
  /// Fault injection and reliable transport; defaults to a perfect
  /// network with the transport bypassed (zero overhead).
  FaultOptions Faults;
  uint64_t MaxEvents = 6000000000ull; ///< runaway guard
};

/// One virtual processor stuck on a receive when the deadlock detector
/// gave up: where it is, and exactly what it is waiting for.
struct PendingRecv {
  std::vector<IntT> Coord; ///< receiver virtual-grid coordinate
  unsigned Phys = 0;       ///< physical processor it is folded onto
  unsigned CommId = 0;     ///< communication-set tag of the receive
  std::vector<IntT> Peer;  ///< expected sender virtual coordinate
  uint64_t ExpectedSeq = 0; ///< next sequence number awaited
  /// Copies queued on the channel with a different (later) sequence
  /// number — arrived out of order, unusable until ExpectedSeq shows up.
  uint64_t BufferedAhead = 0;
};

/// A packet the reliable transport gave up on: every attempt (initial
/// send plus MaxRetries retransmissions) was lost in flight.
struct TransportFailure {
  unsigned CommId = 0;
  std::vector<IntT> Src, Dst; ///< sender / receiver virtual coordinates
  uint64_t Seq = 0;
  unsigned Attempts = 0; ///< transmissions made before giving up
};

/// Structured failure report built when a run cannot complete, instead
/// of a bare error string: which processors are stuck, what they wait
/// for, what the transport already gave up on.
struct SimDiagnostics {
  std::vector<PendingRecv> StuckProcs;
  std::vector<TransportFailure> RetryExhausted;
  uint64_t InFlightMessages = 0; ///< undelivered copies across channels
  uint64_t FinishedProcs = 0, TotalProcs = 0;

  /// Human-readable rendering ("deadlock: ... vp(1,2) waiting ...").
  std::string str() const;
};

/// Aggregate outcome of a simulation.
struct SimResult {
  bool Ok = false;
  std::string Error; ///< rendered diagnostics when !Ok
  SimDiagnostics Diag; ///< structured failure report when !Ok
  double MakespanSeconds = 0;
  uint64_t Messages = 0;       ///< network messages (inter-physical)
  uint64_t IntraMessages = 0;  ///< folded-away intra-physical messages
  uint64_t Words = 0;          ///< words crossing the network
  uint64_t Flops = 0;
  uint64_t ComputeIterations = 0;
  uint64_t TotalEvents = 0;   ///< executed SPMD statements
  std::vector<double> PhysBusy; ///< busy seconds per physical processor

  // Reliable-transport counters (all zero when the transport is
  // bypassed). Messages/Words above stay logical (one per app-level
  // send) so they remain comparable across fault schedules.
  uint64_t Retransmissions = 0;      ///< extra transmissions by senders
  uint64_t DroppedPackets = 0;       ///< data copies lost in flight
  uint64_t DuplicatesSuppressed = 0; ///< redundant copies discarded
  uint64_t AcksSent = 0;             ///< acknowledgements generated
};

/// The machine simulator.
class Simulator {
public:
  Simulator(const Program &P, const CompiledProgram &CP,
            const CompileSpec &Spec, SimOptions Opts);
  ~Simulator();

  /// Runs to completion (or deadlock). Idempotent state: construct a new
  /// Simulator per run.
  SimResult run();

  /// After a functional run: the value of an array element under the
  /// final data layout (or, absent a final layout, the value held by any
  /// virtual processor that wrote or received it last — for verification
  /// the final layout should be supplied). nullopt if nobody holds it.
  std::optional<double> finalValue(unsigned ArrayId,
                                   const std::vector<IntT> &Idx) const;

  /// Number of virtual processors along each grid dimension.
  const std::vector<IntT> &virtGridLo() const { return VirtLo; }
  const std::vector<IntT> &virtGridHi() const { return VirtHi; }

private:
  struct Frame;
  struct VirtProc;
  struct Message;

  IntT flatIndex(unsigned ArrayId, const std::vector<IntT> &Idx) const;
  void computeVirtualGrid();
  void initLocalStores();
  bool stepProc(VirtProc &V, SimResult &R);
  void execComputeIter(VirtProc &V, const SpmdStmt &St);
  double statementCost(const Statement &S) const;
  unsigned physOf(const std::vector<IntT> &VirtCoord) const;
  void reportDeadlock(SimResult &R) const;

  const Program &P;
  const CompiledProgram &CP;
  const CompileSpec &Spec;
  SimOptions Opts;
  FaultModel Faults;

  std::vector<IntT> VirtLo, VirtHi; ///< virtual grid extent per dim
  std::vector<VirtProc> Procs;
  std::map<std::vector<IntT>, std::vector<Message>> Queues;
  /// Reliable transport: next sequence number per directed channel key
  /// (CommId, src coord, dst coord), sender and receiver side.
  std::map<std::vector<IntT>, uint64_t> SendSeq, RecvSeq;
  /// Packets whose retry budget was exhausted (never delivered).
  std::vector<TransportFailure> Failures;
  std::vector<double> PhysClock;
  std::vector<double> PhysBusy;
  std::vector<double> SlowFactor; ///< per-phys compute slowdown (>= 1)
  std::vector<IntT> ParamEnv; ///< parameter values aligned to Spmd space
  uint64_t Events = 0;        ///< executed SPMD statements (budget guard)
};

} // namespace dmcc

#endif // DMCC_SIM_SIMULATOR_H
